//! Property-based tests for the tensor and autodiff substrate.
//!
//! These check algebraic invariants on randomly-shaped, randomly-filled
//! tensors — the kind of structural guarantees the model layers above lean
//! on without re-checking.

use proptest::prelude::*;
use stgnn_tensor::autograd::{Graph, Param};
use stgnn_tensor::pool::{self, Buffer};
use stgnn_tensor::{Shape, Tensor};

/// Strategy: a matrix with dims in [1, 6] and elements in [-10, 10].
fn matrix() -> impl Strategy<Value = Tensor> {
    (1usize..=6, 1usize..=6).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Tensor::from_vec(Shape::matrix(r, c), data).unwrap())
    })
}

/// Strategy: two same-shape matrices.
fn matrix_pair() -> impl Strategy<Value = (Tensor, Tensor)> {
    (1usize..=6, 1usize..=6).prop_flat_map(|(r, c)| {
        let n = r * c;
        (
            proptest::collection::vec(-10.0f32..10.0, n),
            proptest::collection::vec(-10.0f32..10.0, n),
        )
            .prop_map(move |(a, b)| {
                (
                    Tensor::from_vec(Shape::matrix(r, c), a).unwrap(),
                    Tensor::from_vec(Shape::matrix(r, c), b).unwrap(),
                )
            })
    })
}

/// Strategy: a compatible matmul pair (m×k, k×n).
fn matmul_pair() -> impl Strategy<Value = (Tensor, Tensor)> {
    (1usize..=5, 1usize..=5, 1usize..=5).prop_flat_map(|(m, k, n)| {
        (
            proptest::collection::vec(-5.0f32..5.0, m * k),
            proptest::collection::vec(-5.0f32..5.0, k * n),
        )
            .prop_map(move |(a, b)| {
                (
                    Tensor::from_vec(Shape::matrix(m, k), a).unwrap(),
                    Tensor::from_vec(Shape::matrix(k, n), b).unwrap(),
                )
            })
    })
}

proptest! {
    #[test]
    fn add_commutes((a, b) in matrix_pair()) {
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert!(ab.approx_eq(&ba, 1e-5));
    }

    #[test]
    fn transpose_involutes(a in matrix()) {
        let tt = a.transpose().unwrap().transpose().unwrap();
        prop_assert!(tt.approx_eq(&a, 0.0));
    }

    #[test]
    fn matmul_transpose_identity((a, b) in matmul_pair()) {
        // (AB)ᵀ = BᵀAᵀ
        let lhs = a.matmul(&b).unwrap().transpose().unwrap();
        let rhs = b.transpose().unwrap().matmul(&a.transpose().unwrap()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn matmul_identity_is_noop(a in matrix()) {
        let n = a.shape().cols();
        let out = a.matmul(&Tensor::eye(n)).unwrap();
        prop_assert!(out.approx_eq(&a, 1e-5));
    }

    #[test]
    fn softmax_rows_are_distributions(a in matrix()) {
        let s = a.softmax_rows().unwrap();
        for i in 0..s.shape().rows() {
            let sum: f32 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5, "row {i} sums to {sum}");
            prop_assert!(s.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(a in matrix()) {
        let s1 = a.softmax_rows().unwrap();
        let s2 = a.add_scalar(7.5).softmax_rows().unwrap();
        prop_assert!(s1.approx_eq(&s2, 1e-5));
    }

    #[test]
    fn sum_cols_plus_rows_consistent(a in matrix()) {
        // Total mass is the same whichever axis reduces first.
        let by_cols = a.sum_cols().unwrap().sum_all().scalar();
        let by_rows = a.sum_rows().unwrap().sum_all().scalar();
        prop_assert!((by_cols - by_rows).abs() < 1e-3 * (1.0 + by_cols.abs()));
    }

    #[test]
    fn relu_is_idempotent_and_nonnegative(a in matrix()) {
        let r = a.relu();
        prop_assert!(r.data().iter().all(|&v| v >= 0.0));
        prop_assert!(r.relu().approx_eq(&r, 0.0));
    }

    #[test]
    fn sigmoid_bounded_and_monotone(a in matrix()) {
        let s = a.sigmoid();
        prop_assert!(s.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        let s2 = a.add_scalar(1.0).sigmoid();
        for (v1, v2) in s.data().iter().zip(s2.data()) {
            prop_assert!(v2 >= v1);
        }
    }

    #[test]
    fn reshape_preserves_data(a in matrix()) {
        let flat = a.reshape(Shape::vector(a.len())).unwrap();
        prop_assert_eq!(flat.data(), a.data());
    }

    #[test]
    fn concat_then_slice_round_trips((a, b) in matrix_pair()) {
        let cat = Tensor::concat_rows(&[&a, &b]).unwrap();
        let r = a.shape().rows();
        let a2 = cat.slice_rows(0, r).unwrap();
        let b2 = cat.slice_rows(r, 2 * r).unwrap();
        prop_assert!(a2.approx_eq(&a, 0.0));
        prop_assert!(b2.approx_eq(&b, 0.0));
    }

    #[test]
    fn autodiff_linear_combination_gradient((a, b) in matrix_pair()) {
        // y = Σ (2a + 3b) ⇒ dy/da = 2, dy/db = 3, everywhere, always.
        let g = Graph::new();
        let pa = Param::new("a", a.clone());
        let pb = Param::new("b", b.clone());
        let va = g.param(&pa);
        let vb = g.param(&pb);
        va.mul_scalar(2.0).add(&vb.mul_scalar(3.0)).sum_all().backward();
        prop_assert!(pa.grad().approx_eq(&Tensor::full(a.shape().clone(), 2.0), 1e-5));
        prop_assert!(pb.grad().approx_eq(&Tensor::full(b.shape().clone(), 3.0), 1e-5));
    }

    #[test]
    fn autodiff_matmul_grad_matches_formula((a, b) in matmul_pair()) {
        // y = Σ AB ⇒ dA = 1·Bᵀ (ones matrix times Bᵀ), dB = Aᵀ·1.
        let g = Graph::new();
        let pa = Param::new("a", a.clone());
        let pb = Param::new("b", b.clone());
        let y = g.param(&pa).matmul(&g.param(&pb)).sum_all();
        y.backward();
        let ones = Tensor::ones(Shape::matrix(a.shape().rows(), b.shape().cols()));
        let expect_da = ones.matmul(&b.transpose().unwrap()).unwrap();
        let expect_db = a.transpose().unwrap().matmul(&ones).unwrap();
        prop_assert!(pa.grad().approx_eq(&expect_da, 1e-3));
        prop_assert!(pb.grad().approx_eq(&expect_db, 1e-3));
    }

    #[test]
    fn gradient_of_sum_is_ones(a in matrix()) {
        let g = Graph::new();
        let p = Param::new("a", a.clone());
        g.param(&p).sum_all().backward();
        prop_assert!(p.grad().approx_eq(&Tensor::ones(a.shape().clone()), 1e-6));
    }

    #[test]
    fn pool_recycling_never_aliases_live_buffers(
        sizes in proptest::collection::vec(1usize..300, 2..16)
    ) {
        // Lease a buffer per size, each stamped with a distinct marker.
        let leased: Vec<(f32, Buffer)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| (i as f32 + 1.0, Buffer::filled(n, i as f32 + 1.0)))
            .collect();
        // Return every other buffer to the pool (dropped by the filter)...
        let kept: Vec<(f32, Buffer)> = leased
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 0)
            .map(|(_, pair)| pair)
            .collect();
        // ...then lease fresh buffers of the same sizes — these reuse the
        // returned storage — and scribble over them.
        let fresh: Vec<Buffer> = sizes
            .iter()
            .map(|&n| {
                let mut b = Buffer::zeroed(n);
                for v in b.iter_mut() {
                    *v = -7.5;
                }
                b
            })
            .collect();
        // No live buffer may have been handed out twice: the kept markers
        // survive untouched, with neither scribbles nor debug poison.
        for (marker, buf) in &kept {
            for &v in buf.iter() {
                prop_assert!(
                    v.to_bits() == marker.to_bits(),
                    "live buffer clobbered: expected {marker}, found {v} \
                     (poison? {})",
                    v.to_bits() == pool::POISON.to_bits()
                );
            }
        }
        drop(fresh);
    }
}
