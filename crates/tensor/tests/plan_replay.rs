//! Bit-identity tests for compiled tape replay.
//!
//! The contract under test: a [`Plan`] compiled from one eager trace,
//! re-run on fresh inputs, produces byte-for-byte the same forward values
//! and parameter gradients as re-tracing the same expression eagerly on
//! those inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;
use stgnn_tensor::autograd::{Graph, Param, ParamSet, Var};
use stgnn_tensor::plan::{LeafBinding, Plan, PlanSpec};
use stgnn_tensor::{Shape, Tensor};

fn random_tensor(rng: &mut StdRng, r: usize, c: usize) -> Tensor {
    let data: Vec<f32> = (0..r * c).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect();
    Tensor::from_vec(Shape::matrix(r, c), data).unwrap()
}

fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs: {x} vs {y}"
        );
    }
}

/// A deterministic random expression over square matrices: the same
/// `choices` sequence rebuilds the identical tape structure, so one build
/// is traced into a plan and the other serves as the eager reference.
fn build_expr(_g: &Graph, inputs: &[Var], params: &[Var], choices: &[u32]) -> Var {
    let mut pool: Vec<Var> = inputs.to_vec();
    pool.extend_from_slice(params);
    for chunk in choices.chunks(3) {
        let (op, i, j) = (chunk[0], chunk[1] as usize, chunk[2] as usize);
        let a = pool[i % pool.len()].clone();
        let b = pool[j % pool.len()].clone();
        let out = match op % 12 {
            0 => a.add(&b),
            1 => a.sub(&b),
            2 => a.mul(&b),
            3 => a.matmul(&b),
            4 => a.transpose(),
            5 => a.relu(),
            6 => a.tanh(),
            7 => a.sigmoid(),
            8 => a.mul_scalar(0.5).add(&b.mul_scalar(1.5)),
            9 => a.softmax_rows(),
            10 => a.add_scalar(0.25).square(),
            11 => a.neg().elu(),
            _ => unreachable!(),
        };
        pool.push(out);
    }
    pool.last().unwrap().square().mean_all()
}

/// Traces `build` eagerly, compiles the tape, then checks replay on fresh
/// inputs against a fresh eager trace — values and param grads bitwise.
fn check_replay_matches_eager(
    n: usize,
    num_inputs: usize,
    params: &[Rc<Param>],
    pset: &ParamSet,
    choices: &[u32],
    rng: &mut StdRng,
) {
    // Trace once to get the tape.
    let trace_inputs: Vec<Tensor> = (0..num_inputs).map(|_| random_tensor(rng, n, n)).collect();
    let g = Graph::new();
    let leaves: Vec<Var> = trace_inputs.iter().map(|t| g.leaf(t.clone())).collect();
    let pvars: Vec<Var> = params.iter().map(|p| g.param(p)).collect();
    let root = build_expr(&g, &leaves, &pvars, choices);
    let snapshot = g.snapshot();

    let spec = PlanSpec {
        bindings: leaves
            .iter()
            .enumerate()
            .map(|(i, v)| (v.id(), LeafBinding::Input(i)))
            .collect(),
        roots: vec![root.id()],
        loss: Some(root.id()),
    };
    let plan = Plan::compile(&snapshot, pset, spec).unwrap();
    let mut exec = plan.executor();

    // Replay several times on fresh inputs; each replay must match a fresh
    // eager trace bit-for-bit.
    for step in 0..3 {
        let inputs: Vec<Tensor> = (0..num_inputs).map(|_| random_tensor(rng, n, n)).collect();

        pset.zero_grads();
        let ge = Graph::new();
        let eleaves: Vec<Var> = inputs.iter().map(|t| ge.leaf(t.clone())).collect();
        let epvars: Vec<Var> = params.iter().map(|p| ge.param(p)).collect();
        let eroot = build_expr(&ge, &eleaves, &epvars, choices);
        eroot.backward();
        let eager_value = eroot.value();
        let eager_grads: Vec<Tensor> = params.iter().map(|p| p.grad()).collect();

        pset.zero_grads();
        let loss = plan.step(&mut exec, &inputs, 1.0).unwrap();
        assert_eq!(
            loss.to_bits(),
            eager_value.scalar().to_bits(),
            "step {step}: loss differs"
        );
        let root_value = plan.outputs(&exec).pop().unwrap();
        assert_bits_eq(&root_value, &eager_value, "root value");
        for (p, eg) in params.iter().zip(&eager_grads) {
            p.with_grad(|pg| assert_bits_eq(pg, eg, &format!("grad of {}", p.name())));
        }
    }
}

#[test]
fn randomized_tapes_replay_bit_identical_to_eager() {
    let mut rng = StdRng::seed_from_u64(0x5eed);
    for case in 0..12 {
        let n = 1 + (case % 5);
        let mut pset = ParamSet::new();
        let pa = pset.add("w_a", random_tensor(&mut rng, n, n));
        let pb = pset.add("w_b", random_tensor(&mut rng, n, n));
        let choices: Vec<u32> = (0..24).map(|_| rng.gen::<u32>()).collect();
        check_replay_matches_eager(n, 2, &[pa, pb], &pset, &choices, &mut rng);
    }
}

#[test]
fn dropout_replay_consumes_rng_stream_like_eager() {
    let n = 6;
    let mut setup = StdRng::seed_from_u64(41);
    let mut pset = ParamSet::new();
    let w = pset.add("w", random_tensor(&mut setup, n, n));
    let trace_input = random_tensor(&mut setup, n, n);

    let build = |_g: &Graph, x: &Var, wv: &Var, rng: &mut StdRng| -> Var {
        x.matmul(wv)
            .relu()
            .dropout(0.3, rng)
            .matmul(wv)
            .dropout(0.3, rng)
            .square()
            .mean_all()
    };

    let mut trace_rng = StdRng::seed_from_u64(7);
    let g = Graph::new();
    let xl = g.leaf(trace_input.clone());
    let wv = g.param(&w);
    let root = build(&g, &xl, &wv, &mut trace_rng);
    let plan = Plan::compile(
        &g.snapshot(),
        &pset,
        PlanSpec {
            bindings: vec![(xl.id(), LeafBinding::Input(0))],
            roots: vec![root.id()],
            loss: Some(root.id()),
        },
    )
    .unwrap();
    assert!(plan.needs_rng());
    let mut exec = plan.executor();

    // Dropout tapes must refuse the RNG-less entry point.
    assert!(plan
        .forward(&mut exec, std::slice::from_ref(&trace_input))
        .is_err());

    let input = random_tensor(&mut setup, n, n);

    // Eager reference: fresh trace drawing masks from a seeded stream.
    pset.zero_grads();
    let mut rng_e = StdRng::seed_from_u64(99);
    let ge = Graph::new();
    let xe = ge.leaf(input.clone());
    let we = ge.param(&w);
    let eroot = build(&ge, &xe, &we, &mut rng_e);
    eroot.backward();
    let eager_value = eroot.value();
    let eager_grad = w.grad();

    // Plan replay from an identically-seeded stream: identical masks in
    // node order, hence identical bytes everywhere.
    pset.zero_grads();
    let mut rng_p = StdRng::seed_from_u64(99);
    plan.step_with_rng(&mut exec, &[input], 1.0, &mut rng_p)
        .unwrap();
    assert_bits_eq(
        &plan.outputs(&exec).pop().unwrap(),
        &eager_value,
        "dropout root",
    );
    w.with_grad(|pg| assert_bits_eq(pg, &eager_grad, "dropout grad"));
}

#[test]
fn structured_ops_replay_bit_identical() {
    // rows_max_pool (traced groups) + concat_cols + broadcasts — the ops
    // whose backward routes gradients through recorded structure.
    let mut rng = StdRng::seed_from_u64(17);
    let (r, c) = (8, 5);
    let mut pset = ParamSet::new();
    let w = pset.add("w", random_tensor(&mut rng, c, c));
    let groups: Vec<Vec<usize>> = vec![vec![0, 3, 5], vec![1, 2], vec![4, 6, 7]];

    let build = |g: &Graph, x: &Var, col: &Var, wv: &Var| -> Var {
        let h = x.matmul(wv).relu();
        let pooled = h.rows_max_pool(&groups);
        let both = g.concat_cols(&[&pooled, &pooled.neg()]);
        both.mul_col_broadcast(col).square().mean_all()
    };

    let trace_x = random_tensor(&mut rng, r, c);
    let trace_col = random_tensor(&mut rng, groups.len(), 1);
    let g = Graph::new();
    let xl = g.leaf(trace_x.clone());
    let cl = g.leaf(trace_col.clone());
    let wv = g.param(&w);
    let root = build(&g, &xl, &cl, &wv);
    let plan = Plan::compile(
        &g.snapshot(),
        &pset,
        PlanSpec {
            bindings: vec![
                (xl.id(), LeafBinding::Input(0)),
                (cl.id(), LeafBinding::Input(1)),
            ],
            roots: vec![root.id()],
            loss: Some(root.id()),
        },
    )
    .unwrap();
    let mut exec = plan.executor();

    for _ in 0..3 {
        let x = random_tensor(&mut rng, r, c);
        let col = random_tensor(&mut rng, groups.len(), 1);

        pset.zero_grads();
        let ge = Graph::new();
        let xe = ge.leaf(x.clone());
        let ce = ge.leaf(col.clone());
        let we = ge.param(&w);
        let eroot = build(&ge, &xe, &ce, &we);
        eroot.backward();
        let eager_value = eroot.value();
        let eager_grad = w.grad();

        pset.zero_grads();
        plan.step(&mut exec, &[x, col], 1.0).unwrap();
        assert_bits_eq(
            &plan.outputs(&exec).pop().unwrap(),
            &eager_value,
            "structured root",
        );
        w.with_grad(|pg| assert_bits_eq(pg, &eager_grad, "structured grad"));
    }
}

#[test]
fn derived_leaves_recompute_from_upstream_values() {
    // A derived leaf mirrors eager's out-of-tape computation: here a mask
    // thresholded from an upstream activation, like the flow-conservation
    // gate the model computes from fused flow estimates.
    let n = 4;
    let mut rng = StdRng::seed_from_u64(23);
    let mut pset = ParamSet::new();
    let w = pset.add("w", random_tensor(&mut rng, n, n));

    let mask_of = |h: &Tensor| h.map(|v| if v > 0.5 { 1.0 } else { 0.0 });

    let build = |g: &Graph, x: &Tensor, wv: &Var| -> (Var, Var, Var) {
        let xl = g.leaf(x.clone());
        let h = xl.matmul(wv).sigmoid();
        let mask = g.leaf(mask_of(&h.value()));
        let root = h.mul(&mask).square().mean_all();
        (xl, mask, root)
    };

    let trace_x = random_tensor(&mut rng, n, n);
    let g = Graph::new();
    let wv = g.param(&w);
    let (xl, mask, root) = build(&g, &trace_x, &wv);
    let h_id = mask.id() - 1; // sigmoid node traced immediately before the mask leaf
    let plan = Plan::compile(
        &g.snapshot(),
        &pset,
        PlanSpec {
            bindings: vec![
                (xl.id(), LeafBinding::Input(0)),
                (
                    mask.id(),
                    LeafBinding::derived(vec![h_id], move |values| Ok(mask_of(&values[h_id]))),
                ),
            ],
            roots: vec![root.id()],
            loss: Some(root.id()),
        },
    )
    .unwrap();
    let mut exec = plan.executor();

    for _ in 0..3 {
        let x = random_tensor(&mut rng, n, n);

        pset.zero_grads();
        let ge = Graph::new();
        let we = ge.param(&w);
        let (_, _, eroot) = build(&ge, &x, &we);
        eroot.backward();
        let eager_value = eroot.value();
        let eager_grad = w.grad();

        pset.zero_grads();
        plan.step(&mut exec, &[x], 1.0).unwrap();
        assert_bits_eq(
            &plan.outputs(&exec).pop().unwrap(),
            &eager_value,
            "derived root",
        );
        w.with_grad(|pg| assert_bits_eq(pg, &eager_grad, "derived grad"));
    }
}

#[test]
fn backward_seed_scale_matches_eager_mul_scalar() {
    // Eager scales the loss by `s` before backward; the plan seeds the
    // un-scaled loss node with `s` directly. Same bytes either way.
    let n = 5;
    let mut rng = StdRng::seed_from_u64(29);
    let mut pset = ParamSet::new();
    let w = pset.add("w", random_tensor(&mut rng, n, n));
    let x = random_tensor(&mut rng, n, n);
    let scale = 0.037f32;

    pset.zero_grads();
    let ge = Graph::new();
    let xe = ge.leaf(x.clone());
    let sq = xe.matmul(&ge.param(&w)).square().sum_all();
    sq.mul_scalar(scale).backward();
    let eager_grad = w.grad();

    let g = Graph::new();
    let xl = g.leaf(x.clone());
    let root = xl.matmul(&g.param(&w)).square().sum_all();
    let plan = Plan::compile(
        &g.snapshot(),
        &pset,
        PlanSpec {
            bindings: vec![(xl.id(), LeafBinding::Input(0))],
            roots: vec![root.id()],
            loss: Some(root.id()),
        },
    )
    .unwrap();
    pset.zero_grads();
    let mut exec = plan.executor();
    plan.step(&mut exec, &[x], scale).unwrap();
    w.with_grad(|pg| assert_bits_eq(pg, &eager_grad, "seeded grad"));
}

#[test]
fn compile_rejects_malformed_specs() {
    let g = Graph::new();
    let mut pset = ParamSet::new();
    let w = pset.add("w", Tensor::ones(Shape::matrix(2, 2)));
    let x = g.leaf(Tensor::ones(Shape::matrix(2, 2)));
    let y = x.matmul(&g.param(&w)).sum_all();
    let snap = g.snapshot();

    // Binding a non-leaf node.
    let err = Plan::compile(
        &snap,
        &pset,
        PlanSpec {
            bindings: vec![(y.id(), LeafBinding::Input(0))],
            roots: vec![y.id()],
            loss: None,
        },
    );
    assert!(err.is_err());

    // Binding outside the tape.
    let err = Plan::compile(
        &snap,
        &pset,
        PlanSpec {
            bindings: vec![(snap.nodes.len() + 3, LeafBinding::Input(0))],
            roots: vec![],
            loss: None,
        },
    );
    assert!(err.is_err());

    // Root outside the tape.
    let err = Plan::compile(
        &snap,
        &pset,
        PlanSpec {
            bindings: vec![],
            roots: vec![snap.nodes.len()],
            loss: None,
        },
    );
    assert!(err.is_err());

    // Param missing from the set.
    let empty = ParamSet::new();
    let err = Plan::compile(&snap, &empty, PlanSpec::default());
    assert!(err.is_err());

    // Input count mismatch at replay time.
    let plan = Plan::compile(
        &snap,
        &pset,
        PlanSpec {
            bindings: vec![(x.id(), LeafBinding::Input(0))],
            roots: vec![y.id()],
            loss: Some(y.id()),
        },
    )
    .unwrap();
    let mut exec = plan.executor();
    assert!(plan.forward(&mut exec, &[]).is_err());
    // Shape mismatch on a bound input.
    assert!(plan
        .forward(&mut exec, &[Tensor::ones(Shape::matrix(3, 3))])
        .is_err());
}
