// lint: allow-file(L002, L004): `from_vec` gets a vector of exactly
// rows*cols elements, the same product the shape encodes, and
// identity_xavier indexes an n*n buffer it just allocated.
//! Weight initialisers.

use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::Rng;

/// Glorot/Xavier uniform initialisation: `U(−a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Suited to the sigmoid/tanh/softmax
/// gates in the model.
pub fn xavier_uniform(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, fan_in, fan_out, a)
}

/// He/Kaiming uniform initialisation: `U(−a, a)` with `a = sqrt(6 / fan_in)`.
/// Suited to ReLU layers (the flow convolution and FCG stacks).
pub fn he_uniform(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Tensor {
    let a = (6.0 / fan_in as f32).sqrt();
    uniform(rng, fan_in, fan_out, a)
}

/// Identity plus scaled Xavier noise, for square feature-mixing matrices.
///
/// Deep stacks of `n×n` mixers (the model's FCG layer weights and PCG value
/// projections) train markedly better from a near-identity start: each layer
/// begins as a small perturbation of "pass the features through", so node
/// identity survives depth at initialisation.
pub fn identity_xavier(rng: &mut impl Rng, n: usize, noise: f32) -> Tensor {
    let a = (6.0 / (2 * n) as f32).sqrt() * noise;
    let mut t = uniform(rng, n, n, a);
    let buf = t.data_mut();
    for i in 0..n {
        buf[i * n + i] += 1.0;
    }
    t
}

fn uniform(rng: &mut impl Rng, rows: usize, cols: usize, a: f32) -> Tensor {
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-a..=a)).collect();
    Tensor::from_vec(Shape::matrix(rows, cols), data).expect("init shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds_and_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = xavier_uniform(&mut rng, 64, 32);
        assert_eq!(w.shape().dims(), &[64, 32]);
        let a = (6.0f32 / 96.0).sqrt();
        assert!(w.data().iter().all(|&v| v.abs() <= a));
        // not degenerate
        assert!(w.frobenius_norm() > 0.0);
    }

    #[test]
    fn he_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = he_uniform(&mut rng, 50, 10);
        let a = (6.0f32 / 50.0).sqrt();
        assert!(w.data().iter().all(|&v| v.abs() <= a));
    }

    #[test]
    fn deterministic_under_seed() {
        let w1 = xavier_uniform(&mut StdRng::seed_from_u64(9), 8, 8);
        let w2 = xavier_uniform(&mut StdRng::seed_from_u64(9), 8, 8);
        assert!(w1.approx_eq(&w2, 0.0));
    }
}
