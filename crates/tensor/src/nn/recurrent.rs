//! Recurrent cells for the paper's RNN and LSTM baselines (§VII-B).
//!
//! The baselines model *temporal dependency only*: the input at each step is
//! the city-wide demand/supply vector and the cell state carries history.
//! These cells are deliberately textbook — the paper's point is that
//! temporal-only recurrent models lose to graph models.

use crate::autograd::{Graph, ParamSet, Var};
use crate::nn::linear::Linear;
use rand::Rng;

/// Elman RNN cell: `h' = tanh(x·W_xh + h·W_hh + b)`.
pub struct RnnCell {
    xh: Linear,
    hh: Linear,
    hidden: usize,
}

impl RnnCell {
    /// Creates a cell with `input` → `hidden` dimensions.
    pub fn new(
        params: &mut ParamSet,
        rng: &mut impl Rng,
        name: &str,
        input: usize,
        hidden: usize,
    ) -> Self {
        RnnCell {
            xh: Linear::new(params, rng, &format!("{name}.xh"), input, hidden, true),
            hh: Linear::new(params, rng, &format!("{name}.hh"), hidden, hidden, false),
            hidden,
        }
    }

    /// One step: returns the next hidden state.
    pub fn step(&self, g: &Graph, x: &Var, h: &Var) -> Var {
        self.xh.forward(g, x).add(&self.hh.forward(g, h)).tanh()
    }

    /// Hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }
}

/// LSTM cell with forget/input/output gates and a cell state.
pub struct LstmCell {
    // One fused x-projection and one fused h-projection per gate keeps the
    // parameter count identical to the fused 4×hidden formulation while
    // staying readable.
    f_x: Linear,
    f_h: Linear,
    i_x: Linear,
    i_h: Linear,
    o_x: Linear,
    o_h: Linear,
    c_x: Linear,
    c_h: Linear,
    hidden: usize,
}

impl LstmCell {
    /// Creates a cell with `input` → `hidden` dimensions.
    pub fn new(
        params: &mut ParamSet,
        rng: &mut impl Rng,
        name: &str,
        input: usize,
        hidden: usize,
    ) -> Self {
        LstmCell {
            f_x: Linear::new(params, rng, &format!("{name}.f_x"), input, hidden, true),
            f_h: Linear::new(params, rng, &format!("{name}.f_h"), hidden, hidden, false),
            i_x: Linear::new(params, rng, &format!("{name}.i_x"), input, hidden, true),
            i_h: Linear::new(params, rng, &format!("{name}.i_h"), hidden, hidden, false),
            o_x: Linear::new(params, rng, &format!("{name}.o_x"), input, hidden, true),
            o_h: Linear::new(params, rng, &format!("{name}.o_h"), hidden, hidden, false),
            c_x: Linear::new(params, rng, &format!("{name}.c_x"), input, hidden, true),
            c_h: Linear::new(params, rng, &format!("{name}.c_h"), hidden, hidden, false),
            hidden,
        }
    }

    /// One step: `(h, c) → (h', c')`.
    pub fn step(&self, g: &Graph, x: &Var, h: &Var, c: &Var) -> (Var, Var) {
        let f = self
            .f_x
            .forward(g, x)
            .add(&self.f_h.forward(g, h))
            .sigmoid();
        let i = self
            .i_x
            .forward(g, x)
            .add(&self.i_h.forward(g, h))
            .sigmoid();
        let o = self
            .o_x
            .forward(g, x)
            .add(&self.o_h.forward(g, h))
            .sigmoid();
        let c_tilde = self.c_x.forward(g, x).add(&self.c_h.forward(g, h)).tanh();
        let c_next = f.mul(c).add(&i.mul(&c_tilde));
        let h_next = o.mul(&c_next.tanh());
        (h_next, c_next)
    }

    /// Hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use crate::shape::Shape;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rnn_step_shapes_and_bounds() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cell = RnnCell::new(&mut ps, &mut rng, "rnn", 3, 5);
        assert_eq!(cell.hidden_dim(), 5);
        let g = Graph::new();
        let x = g.leaf(Tensor::ones(Shape::matrix(2, 3)));
        let h = g.leaf(Tensor::zeros(Shape::matrix(2, 5)));
        let h2 = cell.step(&g, &x, &h);
        assert_eq!(h2.value().shape().dims(), &[2, 5]);
        assert!(h2.value().data().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn lstm_step_shapes() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(2);
        let cell = LstmCell::new(&mut ps, &mut rng, "lstm", 4, 6);
        assert_eq!(cell.hidden_dim(), 6);
        // 4 gates × (x Linear with bias: 2 params) + 4 × (h Linear: 1 param)
        assert_eq!(ps.len(), 12);
        let g = Graph::new();
        let x = g.leaf(Tensor::ones(Shape::matrix(1, 4)));
        let h = g.leaf(Tensor::zeros(Shape::matrix(1, 6)));
        let c = g.leaf(Tensor::zeros(Shape::matrix(1, 6)));
        let (h2, c2) = cell.step(&g, &x, &h, &c);
        assert_eq!(h2.value().shape().dims(), &[1, 6]);
        assert_eq!(c2.value().shape().dims(), &[1, 6]);
    }

    #[test]
    fn lstm_learns_a_short_memory_task() {
        // Predict x[t-1] from the sequence — requires carrying one step of
        // memory through the cell state.
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(7);
        let cell = LstmCell::new(&mut ps, &mut rng, "lstm", 1, 8);
        let head = Linear::new(&mut ps, &mut rng, "head", 8, 1, true);
        let mut opt = Adam::new(0.02);
        let seq: Vec<f32> = (0..20)
            .map(|i| ((i * 37 + 11) % 10) as f32 / 10.0)
            .collect();
        let mut last = f32::INFINITY;
        for _ in 0..150 {
            let g = Graph::new();
            let mut h = g.leaf(Tensor::zeros(Shape::matrix(1, 8)));
            let mut c = g.leaf(Tensor::zeros(Shape::matrix(1, 8)));
            let mut loss_terms: Option<Var> = None;
            for t in 1..seq.len() {
                let x = g.leaf(Tensor::from_rows(&[&[seq[t]]]));
                let (h2, c2) = cell.step(&g, &x, &h, &c);
                h = h2;
                c = c2;
                let pred = head.forward(&g, &h);
                let target = g.leaf(Tensor::from_rows(&[&[seq[t - 1]]]));
                let e = pred.sub(&target).square().sum_all();
                loss_terms = Some(match loss_terms {
                    Some(acc) => acc.add(&e),
                    None => e,
                });
            }
            let loss = loss_terms.unwrap().mul_scalar(1.0 / (seq.len() - 1) as f32);
            last = loss.value().scalar();
            ps.zero_grads();
            loss.backward();
            opt.step(&ps);
        }
        assert!(
            last < 0.02,
            "lstm failed to learn 1-step memory: loss {last}"
        );
    }
}
