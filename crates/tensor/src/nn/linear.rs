//! Fully-connected layer.

use crate::autograd::{Graph, ParamSet, Var};
use crate::nn::init::xavier_uniform;
use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::Rng;
use std::rc::Rc;

use crate::autograd::Param;

/// A dense layer `y = x·W (+ b)` for row-major batches (`x: batch×in`).
pub struct Linear {
    w: Rc<Param>,
    b: Option<Rc<Param>>,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias, registering
    /// its parameters in `params` under `name.w` / `name.b`.
    pub fn new(
        params: &mut ParamSet,
        rng: &mut impl Rng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
    ) -> Self {
        let w = params.add(format!("{name}.w"), xavier_uniform(rng, in_dim, out_dim));
        let b = bias.then(|| {
            params.add(
                format!("{name}.b"),
                Tensor::zeros(Shape::matrix(1, out_dim)),
            )
        });
        Linear { w, b }
    }

    /// Applies the layer on the tape.
    pub fn forward(&self, g: &Graph, x: &Var) -> Var {
        let w = g.param(&self.w);
        let y = x.matmul(&w);
        match &self.b {
            Some(b) => y.add_row_broadcast(&g.param(b)),
            None => y,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.value().shape().rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.value().shape().cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Optimizer, Sgd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let layer = Linear::new(&mut ps, &mut rng, "fc", 4, 2, true);
        assert_eq!(layer.in_dim(), 4);
        assert_eq!(layer.out_dim(), 2);
        assert_eq!(ps.len(), 2);

        let g = Graph::new();
        let x = g.leaf(Tensor::ones(Shape::matrix(3, 4)));
        let y = layer.forward(&g, &x);
        assert_eq!(y.value().shape().dims(), &[3, 2]);
    }

    #[test]
    fn no_bias_registers_one_param() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let _ = Linear::new(&mut ps, &mut rng, "fc", 4, 2, false);
        assert_eq!(ps.len(), 1);
    }

    #[test]
    fn learns_a_linear_map() {
        // y = x·W* with W* fixed; SGD on MSE should drive the loss near zero.
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(5);
        let layer = Linear::new(&mut ps, &mut rng, "fc", 2, 1, true);
        let w_star = Tensor::from_rows(&[&[2.0], &[-3.0]]);
        let xs = Tensor::from_rows(&[&[1.0, 0.5], &[0.2, -1.0], &[-0.7, 0.3], &[1.5, 1.5]]);
        let ys = xs.matmul(&w_star).unwrap().add_scalar(0.5);

        let mut opt = Sgd::new(0.1);
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            let g = Graph::new();
            let x = g.leaf(xs.clone());
            let t = g.leaf(ys.clone());
            let loss = layer.forward(&g, &x).sub(&t).square().mean_all();
            last = loss.value().scalar();
            ps.zero_grads();
            loss.backward();
            opt.step(&ps);
        }
        assert!(last < 1e-4, "linear layer failed to fit: loss {last}");
    }
}
