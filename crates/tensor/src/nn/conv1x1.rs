// lint: allow-file(L002, L004): weight tensors are built from vectors whose
// length is computed from the very shape passed to `from_vec`.
//! The paper's 1×1 "flow convolution" kernel (Eqs 1–4).
//!
//! STGNN-DJD treats a station's historical inflow/outflow rows at `k`
//! different time slots as `k` channels of a `1×n` image and fuses them with
//! a 1×1 convolution — i.e. a learned linear combination of the channels plus
//! an `n×n` bias, followed by ReLU:
//!
//! ```text
//! Î = σ₁(W ∗ I + b),   W ∈ R^{1×k},  b ∈ R^{n×n},  I ∈ R^{k×n×n}
//! ```
//!
//! Implementation note: a 1×1 convolution across channels of spatially-flat
//! data is exactly `w_row · X_flat` where `X_flat ∈ R^{k×(n·n)}` stacks each
//! slot's matrix as a row. That turns the op into one matmul on the tape —
//! no convolution machinery required, and the gradient falls out of matmul.

use crate::autograd::{Graph, Param, ParamSet, Var};
use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::Rng;
use std::rc::Rc;

/// Channel-fusing 1×1 convolution over `channels` stacked `rows×cols`
/// matrices, with a full-size bias and optional ReLU (σ₁ in the paper).
pub struct Conv1x1 {
    w: Rc<Param>,
    b: Rc<Param>,
    rows: usize,
    cols: usize,
    relu: bool,
}

impl Conv1x1 {
    /// Creates the kernel. Weights start near 1 (a *sum* over slots — the
    /// window-total flow, which keeps activations O(1) even though per-slot
    /// flow matrices are sparse and max-normalised) plus small noise; bias
    /// at 0. A mean-over-slots init (`1/channels`) shrinks the fused signal
    /// by ~`channels`× and measurably stalls early training.
    pub fn new(
        params: &mut ParamSet,
        rng: &mut impl Rng,
        name: &str,
        channels: usize,
        rows: usize,
        cols: usize,
        relu: bool,
    ) -> Self {
        let base = 1.0f32;
        let jitter = 0.1f32;
        let w_data: Vec<f32> = (0..channels)
            .map(|_| base + rng.gen_range(-jitter..=jitter))
            .collect();
        let w = params.add(
            format!("{name}.w"),
            Tensor::from_vec(Shape::matrix(1, channels), w_data).expect("conv1x1 w"),
        );
        let b = params.add(
            format!("{name}.b"),
            Tensor::zeros(Shape::matrix(rows, cols)),
        );
        Conv1x1 {
            w,
            b,
            rows,
            cols,
            relu,
        }
    }

    /// Flattens a stack of `channels` matrices (given as a rank-3 tensor
    /// `(channels, rows, cols)`) into the `(channels, rows·cols)` layout the
    /// forward pass consumes. Pure data movement, done outside the tape.
    pub fn flatten_stack(stack: &Tensor) -> Tensor {
        let dims = stack.shape().dims();
        assert_eq!(
            dims.len(),
            3,
            "flatten_stack expects rank-3, got {}",
            stack.shape()
        );
        stack
            .reshape(Shape::matrix(dims[0], dims[1] * dims[2]))
            .expect("flatten_stack reshape")
    }

    /// Applies the kernel to a flattened `(channels, rows·cols)` input and
    /// returns the fused `(rows, cols)` matrix on the tape.
    pub fn forward(&self, g: &Graph, x_flat: &Var) -> Var {
        let w = g.param(&self.w);
        let b = g.param(&self.b);
        let fused = w
            .matmul(x_flat)
            .reshape(Shape::matrix(self.rows, self.cols))
            .add(&b);
        if self.relu {
            fused.relu()
        } else {
            fused
        }
    }

    /// Number of input channels.
    pub fn channels(&self) -> usize {
        self.w.value().shape().cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stack3(mats: &[Tensor]) -> Tensor {
        let (r, c) = mats[0].shape().as_matrix("stack3").unwrap();
        let mut data = Vec::with_capacity(mats.len() * r * c);
        for m in mats {
            data.extend_from_slice(m.data());
        }
        Tensor::from_vec(Shape::from_dims(&[mats.len(), r, c]), data).unwrap()
    }

    #[test]
    fn forward_is_weighted_channel_sum() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(11);
        let conv = Conv1x1::new(&mut ps, &mut rng, "c", 2, 2, 2, false);
        // Overwrite weights with known values.
        ps.params()[0].set_value(Tensor::from_rows(&[&[2.0, -1.0]]));
        ps.params()[1].set_value(Tensor::from_rows(&[&[0.5, 0.0], &[0.0, 0.0]]));

        let m1 = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let m2 = Tensor::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let flat = Conv1x1::flatten_stack(&stack3(&[m1, m2]));
        let g = Graph::new();
        let y = conv.forward(&g, &g.leaf(flat));
        // 2*m1 - m2 + bias
        assert!(y
            .value()
            .approx_eq(&Tensor::from_rows(&[&[1.5, 3.0], &[5.0, 7.0]]), 1e-6));
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(11);
        let conv = Conv1x1::new(&mut ps, &mut rng, "c", 1, 1, 2, true);
        ps.params()[0].set_value(Tensor::from_rows(&[&[1.0]]));
        let flat = Tensor::from_rows(&[&[-3.0, 4.0]]);
        let g = Graph::new();
        let y = conv.forward(&g, &g.leaf(flat));
        assert_eq!(y.value().data(), &[0.0, 4.0]);
    }

    #[test]
    fn channels_reported() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let conv = Conv1x1::new(&mut ps, &mut rng, "c", 7, 3, 3, true);
        assert_eq!(conv.channels(), 7);
    }

    #[test]
    fn learns_to_pick_the_informative_channel() {
        // Target = channel 0; channel 1 is noise. The kernel should learn
        // w ≈ [1, 0].
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(21);
        let conv = Conv1x1::new(&mut ps, &mut rng, "c", 2, 2, 2, false);
        let mut opt = Adam::new(0.05);
        let mut last = f32::INFINITY;
        for step in 0..200 {
            let signal = Tensor::from_rows(&[&[(step % 7) as f32, 1.0], &[2.0, (step % 3) as f32]]);
            let noise_vals: Vec<f32> = (0..4)
                .map(|i| ((step * 31 + i * 17) % 13) as f32 - 6.0)
                .collect();
            let noise = Tensor::from_vec(Shape::matrix(2, 2), noise_vals).unwrap();
            let flat = Conv1x1::flatten_stack(&stack3(&[signal.clone(), noise]));
            let g = Graph::new();
            let y = conv.forward(&g, &g.leaf(flat));
            let loss = y.sub(&g.leaf(signal)).square().mean_all();
            last = loss.value().scalar();
            ps.zero_grads();
            loss.backward();
            opt.step(&ps);
        }
        assert!(
            last < 1e-2,
            "conv1x1 failed to isolate channel: loss {last}"
        );
        let w = ps.params()[0].value();
        assert!((w.data()[0] - 1.0).abs() < 0.1, "w0 = {}", w.data()[0]);
        assert!(w.data()[1].abs() < 0.1, "w1 = {}", w.data()[1]);
    }
}
