//! Neural-network building blocks on top of the autodiff tape.
//!
//! Modules own [`crate::autograd::Param`]s registered in a shared
//! [`crate::autograd::ParamSet`]; their `forward` methods take a
//! [`crate::autograd::Graph`] and [`crate::autograd::Var`] inputs so each
//! training step traces a fresh tape (define-by-run).

mod conv1x1;
mod init;
mod linear;
mod recurrent;

pub use conv1x1::Conv1x1;
pub use init::{he_uniform, identity_xavier, xavier_uniform};
pub use linear::Linear;
pub use recurrent::{LstmCell, RnnCell};

pub use crate::autograd::{Param, ParamSet};
