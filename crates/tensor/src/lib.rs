//! # stgnn-tensor
//!
//! A small, dependency-light tensor and reverse-mode automatic
//! differentiation engine, written from scratch for the STGNN-DJD (ICDE 2022)
//! reproduction. The Rust GNN training ecosystem is too immature to lean on,
//! so this crate provides everything the paper's model needs:
//!
//! * [`Tensor`] — row-major `f32` storage with copy-on-write semantics
//!   (cheap clones via `Arc`), elementwise arithmetic, matrix products,
//!   reductions and broadcast helpers.
//! * [`autograd`] — a tape-based reverse-mode autodiff [`autograd::Graph`]
//!   whose [`autograd::Var`] handles mirror the tensor API; every
//!   differentiable op registers a backward closure and gradients flow back
//!   to [`nn::Param`] leaves.
//! * [`nn`] — neural-network building blocks: [`nn::Linear`],
//!   [`nn::Conv1x1`] (the paper's channel-fusing 1×1 convolution of
//!   Eqs 1–4), dropout (a `Var` method), recurrent cells for the RNN/LSTM baselines,
//!   and initialisers.
//! * [`optim`] — SGD and Adam (the paper trains with Adam, §VII-C).
//! * [`loss`] — MSE/MAE building blocks and the paper's joint
//!   demand–supply loss (Eq 21).
//! * [`par`] — a persistent work-chunking thread pool the hot kernels
//!   (`matmul`, `softmax_rows`, the broadcasts) dispatch through; sized by
//!   `STGNN_THREADS` / `available_parallelism()`, bit-for-bit deterministic
//!   in the thread count.
//! * [`pool`] — a size-bucketed recycling pool every tensor's storage is
//!   leased from; fixed-shape steady states (a training step, a serve
//!   forward) stop touching the system allocator once warm.
//! * [`plan`] — a tape compiler: one traced [`autograd::Graph::snapshot`]
//!   becomes a [`plan::Plan`] that replays forward+backward over
//!   preallocated node slots, bit-identical to eager execution.
//!
//! The engine is deliberately CPU-only and `f32`-only: the model operates on
//! `n×n` station matrices (n in the tens to hundreds), where a cache-friendly
//! naive matmul is entirely adequate and keeps the code auditable.
//!
//! ## Quick example
//!
//! ```
//! use stgnn_tensor::{Tensor, autograd::Graph};
//!
//! let g = Graph::new();
//! let a = g.leaf(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
//! let b = g.leaf(Tensor::from_rows(&[&[1.0], &[1.0]]));
//! let y = a.matmul(&b).sum_all();
//! assert_eq!(y.value().scalar(), 10.0);
//! ```

pub mod autograd;
pub mod error;
pub mod loss;
pub mod nn;
pub mod optim;
pub mod par;
pub mod plan;
pub mod pool;
pub mod serialize;
pub mod shape;
pub mod tensor;

pub use error::{Error, Result};
pub use shape::Shape;
pub use tensor::Tensor;
