// lint: allow-file(L002, L004): optimizer state buffers are created with
// each parameter's exact shape at construction, so the per-step elementwise
// ops cannot shape-mismatch.
//! First-order optimizers over a [`ParamSet`].
//!
//! The paper trains with Adam (§VII-C, lr 0.01); SGD exists for tests and
//! ablations. Optimizers key per-parameter state by registration index, so a
//! given optimizer must always be stepped with the same `ParamSet`.

use crate::autograd::ParamSet;
use crate::tensor::Tensor;

/// A gradient-descent optimizer.
pub trait Optimizer {
    /// Applies one update from the accumulated gradients, then zeroes them.
    fn step(&mut self, params: &ParamSet);
    /// The current learning rate.
    fn learning_rate(&self) -> f32;
    /// Overrides the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional gradient clipping.
pub struct Sgd {
    lr: f32,
    clip: Option<f32>,
}

impl Sgd {
    /// SGD with learning rate `lr` and no clipping.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, clip: None }
    }

    /// Enables global-norm gradient clipping at `max_norm`.
    pub fn with_clip(mut self, max_norm: f32) -> Self {
        self.clip = Some(max_norm);
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &ParamSet) {
        let scale = clip_scale(params, self.clip);
        for p in params.params() {
            let g = p.with_grad(|g| g.mul_scalar(scale));
            let updated = p
                .with_value(|v| v.sub(&g.mul_scalar(self.lr)))
                .expect("sgd shapes");
            p.set_value(updated);
        }
        params.zero_grads();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// A detached snapshot of Adam's per-parameter state, produced by
/// [`Adam::state`] and consumed by [`Adam::restore`] — the unit the training
/// checkpoint persists so a resumed run steps identically.
#[derive(Clone)]
pub struct AdamState {
    /// Steps taken (drives bias correction).
    pub t: u64,
    /// First-moment estimates in registration-index order.
    pub m: Vec<Tensor>,
    /// Second-moment estimates in registration-index order.
    pub v: Vec<Tensor>,
}

/// Adam (Kingma & Ba 2014), the paper's training optimizer.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    clip: Option<f32>,
    t: u64,
    /// First/second moment estimates per parameter, keyed by index.
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with default betas (0.9, 0.999) and ε = 1e-8.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: None,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Enables global-norm gradient clipping at `max_norm`.
    pub fn with_clip(mut self, max_norm: f32) -> Self {
        self.clip = Some(max_norm);
        self
    }

    /// Snapshot of the moment estimates and step counter, for checkpointing
    /// mid-run. Moments are in registration-index order.
    pub fn state(&self) -> AdamState {
        AdamState {
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restores a [`state`](Self::state) snapshot; subsequent steps continue
    /// bit-for-bit as if the run had never been interrupted.
    pub fn restore(&mut self, state: AdamState) {
        self.t = state.t;
        self.m = state.m;
        self.v = state.v;
    }

    fn ensure_state(&mut self, params: &ParamSet) {
        while self.m.len() < params.len() {
            let i = self.m.len();
            let shape = params.params()[i].with_value(|v| v.shape().clone());
            self.m.push(Tensor::zeros(shape.clone()));
            self.v.push(Tensor::zeros(shape));
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &ParamSet) {
        self.ensure_state(params);
        self.t += 1;
        let scale = clip_scale(params, self.clip);
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in params.params().iter().enumerate() {
            let g = p.with_grad(|g| g.mul_scalar(scale));
            let m = self.m[i]
                .mul_scalar(self.beta1)
                .add(&g.mul_scalar(1.0 - self.beta1))
                .expect("adam m");
            let v = self.v[i]
                .mul_scalar(self.beta2)
                .add(&g.square().mul_scalar(1.0 - self.beta2))
                .expect("adam v");
            let m_hat = m.mul_scalar(1.0 / bc1);
            let v_hat = v.mul_scalar(1.0 / bc2);
            let denom = v_hat.sqrt().add_scalar(self.eps);
            let update = m_hat.div(&denom).expect("adam update").mul_scalar(self.lr);
            p.set_value(p.with_value(|v| v.sub(&update)).expect("adam apply"));
            self.m[i] = m;
            self.v[i] = v;
        }
        params.zero_grads();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Scale factor implementing global-norm clipping (1.0 when disabled or
/// under the threshold).
fn clip_scale(params: &ParamSet, clip: Option<f32>) -> f32 {
    match clip {
        Some(max) => {
            let norm = params.grad_norm();
            if norm > max && norm > 0.0 {
                max / norm
            } else {
                1.0
            }
        }
        None => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::Graph;
    use crate::shape::Shape;

    fn quadratic_loss(params: &ParamSet, target: &Tensor) -> f32 {
        let g = Graph::new();
        let x = g.param(&params.params()[0]);
        let t = g.leaf(target.clone());
        let loss = x.sub(&t).square().sum_all();
        let v = loss.value().scalar();
        loss.backward();
        v
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut ps = ParamSet::new();
        ps.add("x", Tensor::zeros(Shape::matrix(1, 3)));
        let target = Tensor::from_rows(&[&[1.0, -2.0, 3.0]]);
        let mut opt = Sgd::new(0.1);
        let mut last = f32::INFINITY;
        for _ in 0..100 {
            ps.zero_grads();
            last = quadratic_loss(&ps, &target);
            opt.step(&ps);
        }
        assert!(last < 1e-6, "sgd loss {last}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut ps = ParamSet::new();
        ps.add("x", Tensor::zeros(Shape::matrix(1, 3)));
        let target = Tensor::from_rows(&[&[1.0, -2.0, 3.0]]);
        let mut opt = Adam::new(0.1);
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            ps.zero_grads();
            last = quadratic_loss(&ps, &target);
            opt.step(&ps);
        }
        assert!(last < 1e-4, "adam loss {last}");
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut ps = ParamSet::new();
        ps.add("x", Tensor::zeros(Shape::matrix(1, 2)));
        quadratic_loss(&ps, &Tensor::from_rows(&[&[5.0, 5.0]]));
        assert!(ps.grad_norm() > 0.0);
        Sgd::new(0.1).step(&ps);
        assert_eq!(ps.grad_norm(), 0.0);
    }

    #[test]
    fn clipping_bounds_the_update() {
        let mut ps = ParamSet::new();
        let p = ps.add("x", Tensor::zeros(Shape::matrix(1, 1)));
        p.accumulate_grad(&Tensor::from_rows(&[&[1000.0]]));
        Sgd::new(1.0).with_clip(1.0).step(&ps);
        // clipped gradient has norm 1 → value moves by exactly lr·1
        assert!(
            (p.value().scalar() + 1.0).abs() < 1e-5,
            "got {}",
            p.value().scalar()
        );
    }

    #[test]
    fn learning_rate_accessors() {
        let mut o = Adam::new(0.01);
        assert_eq!(o.learning_rate(), 0.01);
        o.set_learning_rate(0.001);
        assert_eq!(o.learning_rate(), 0.001);
    }

    #[test]
    fn adam_handles_params_added_later() {
        let mut ps = ParamSet::new();
        ps.add("a", Tensor::zeros(Shape::matrix(1, 1)));
        let mut opt = Adam::new(0.1);
        opt.step(&ps); // state for 1 param
        ps.add("b", Tensor::zeros(Shape::matrix(1, 1)));
        opt.step(&ps); // must grow state without panicking
        assert_eq!(opt.m.len(), 2);
    }
}
