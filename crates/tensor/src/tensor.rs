// lint: allow-file(L004): row-major kernels index within bounds computed by
// the `as_matrix`/len checks at each op's entry; hoisting every access through
// `.get()` would defeat the autovectorizer these loops rely on.
//! Dense row-major `f32` tensors with copy-on-write storage.
//!
//! `Tensor` clones are O(1) (an `Arc` bump); mutation goes through
//! [`Tensor::data_mut`], which clones the buffer only when shared. This keeps
//! the autodiff tape cheap: saved-for-backward tensors share storage with the
//! forward values instead of duplicating every `n×n` matrix.

use crate::error::{Error, Result};
use crate::par;
use crate::pool::Buffer;
use crate::shape::Shape;
use std::fmt;
use std::sync::Arc;

/// Minimum per-chunk work (in scalar ops) before a kernel dispatches to the
/// [`par`] pool. Below this the synchronisation overhead outweighs the loop;
/// row-grain per kernel is derived as `PAR_GRAIN_OPS / ops-per-row`.
pub(crate) const PAR_GRAIN_OPS: usize = 4096;

/// Side length of the square tiles `transpose` gathers through: 32×32 f32
/// tiles (4 KiB working set) keep both the strided reads and the strided
/// writes inside L1 while a whole row/column of a large matrix would not.
const TRANSPOSE_TILE: usize = 32;

/// Contraction-dimension block for the layout-flag GEMM microkernel
/// ([`Tensor::matmul_layout`]): eight `TRANSPOSE_TILE`-sized runs, so the
/// eight B-columns a lane block walks (8 × 256 × 4 B = 8 KiB) stay inside L1
/// together with the A-row segment. Blocking only regroups the *memory*
/// traversal — each output element keeps one accumulator walking the
/// contraction in ascending order, so results are bit-identical to the
/// unblocked kernel.
const GEMM_KC: usize = 8 * TRANSPOSE_TILE;

/// A dense, row-major `f32` tensor.
///
/// Element storage is a [`Buffer`] leased from the [`crate::pool`] recycling
/// pool: dropping the last clone of a tensor returns its elements to the
/// pool, and every kernel output is drawn from it, so fixed-shape workloads
/// (a training step, a serve forward) stop touching the allocator once warm.
#[derive(Clone)]
pub struct Tensor {
    data: Arc<Buffer>,
    shape: Shape,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Builds a tensor from a flat row-major buffer.
    ///
    /// Returns [`Error::InvalidArgument`] when the buffer length does not
    /// match the shape.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self> {
        if data.len() != shape.len() {
            return Err(Error::InvalidArgument(format!(
                "buffer of {} elements cannot fill shape {shape}",
                data.len()
            )));
        }
        Ok(Tensor {
            data: Arc::new(Buffer::from_vec(data)),
            shape,
        })
    }

    /// Builds a tensor directly from a pooled buffer of the right length.
    pub(crate) fn from_buffer(shape: Shape, data: Buffer) -> Self {
        debug_assert_eq!(data.len(), shape.len(), "buffer/shape length mismatch");
        Tensor {
            data: Arc::new(data),
            shape,
        }
    }

    /// A scalar tensor.
    pub fn from_scalar(v: f32) -> Self {
        Tensor {
            data: Arc::new(Buffer::filled(1, v)),
            shape: Shape::scalar(),
        }
    }

    /// A rank-1 tensor from a slice.
    pub fn from_slice(v: &[f32]) -> Self {
        Tensor {
            data: Arc::new(Buffer::copy_of(v)),
            shape: Shape::vector(v.len()),
        }
    }

    /// A rank-2 tensor from row slices.
    ///
    /// # Panics
    /// Panics when rows have unequal lengths; this constructor exists for
    /// literals in tests and examples where that is a typo.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Tensor::from_rows");
            data.extend_from_slice(row);
        }
        Tensor {
            data: Arc::new(Buffer::from_vec(data)),
            shape: Shape::matrix(r, c),
        }
    }

    /// A tensor of zeros.
    pub fn zeros(shape: Shape) -> Self {
        let len = shape.len();
        Tensor::from_buffer(shape, Buffer::zeroed(len))
    }

    /// A tensor of ones.
    pub fn ones(shape: Shape) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `v`.
    pub fn full(shape: Shape, v: f32) -> Self {
        let len = shape.len();
        Tensor::from_buffer(shape, Buffer::filled(len, v))
    }

    /// A tensor whose elements are drawn from `f` in row-major order —
    /// the exact sequence `(0..len).map(|_| f()).collect()` would produce,
    /// but into pooled storage (used for dropout masks).
    pub fn filled_with(shape: Shape, f: impl FnMut() -> f32) -> Self {
        let len = shape.len();
        Tensor::from_buffer(shape, Buffer::filled_with(len, f))
    }

    /// The `n×n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut data = Buffer::zeroed(n * n);
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        Tensor::from_buffer(Shape::matrix(n, n), data)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.shape.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.shape.is_empty()
    }

    /// The flat row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the buffer, cloning it first if shared (COW).
    pub fn data_mut(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Element `(r, c)` of a rank-2 tensor.
    pub fn get2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.rank(), 2);
        self.data[r * self.shape.cols() + c]
    }

    /// Sets element `(r, c)` of a rank-2 tensor.
    pub fn set2(&mut self, r: usize, c: usize, v: f32) {
        debug_assert_eq!(self.shape.rank(), 2);
        let cols = self.shape.cols();
        self.data_mut()[r * cols + c] = v;
    }

    /// The single value of a one-element tensor.
    ///
    /// # Panics
    /// Panics when the tensor has more than one element.
    pub fn scalar(&self) -> f32 {
        assert_eq!(self.len(), 1, "scalar() on tensor of shape {}", self.shape);
        self.data[0]
    }

    /// Row `r` of a rank-2 tensor as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        let c = self.shape.cols();
        &self.data[r * c..(r + 1) * c]
    }

    // ------------------------------------------------------------------
    // Elementwise operations
    // ------------------------------------------------------------------

    /// Applies `f` to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let src = self.data();
        let mut out = Buffer::zeroed(src.len());
        par::for_each_row_chunk_mut(&mut out, 1, PAR_GRAIN_OPS, |first, window| {
            let end = first + window.len();
            for (o, &x) in window.iter_mut().zip(&src[first..end]) {
                *o = f(x);
            }
        });
        Tensor::from_buffer(self.shape.clone(), out)
    }

    /// Combines two same-shape tensors elementwise.
    pub fn zip_map(
        &self,
        rhs: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32 + Sync,
    ) -> Result<Tensor> {
        if self.shape != rhs.shape {
            return Err(Error::ShapeMismatch {
                op,
                lhs: self.shape.dims().to_vec(),
                rhs: rhs.shape.dims().to_vec(),
            });
        }
        let (a, b) = (self.data(), rhs.data());
        let mut out = Buffer::zeroed(a.len());
        par::for_each_row_chunk_mut(&mut out, 1, PAR_GRAIN_OPS, |first, window| {
            let end = first + window.len();
            for ((o, &x), &y) in window.iter_mut().zip(&a[first..end]).zip(&b[first..end]) {
                *o = f(x, y);
            }
        });
        Ok(Tensor::from_buffer(self.shape.clone(), out))
    }

    /// Elementwise sum.
    pub fn add(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_map(rhs, "add", |a, b| a + b)
    }

    /// Elementwise sum into `self`'s buffer: `self[i] += rhs[i]`. Produces
    /// the identical bits to [`Tensor::add`] without cycling a fresh buffer
    /// through the pool; copy-on-write still protects shared storage.
    pub fn add_assign(&mut self, rhs: &Tensor) -> Result<()> {
        if self.shape != rhs.shape {
            return Err(Error::ShapeMismatch {
                op: "add_assign",
                lhs: self.shape.dims().to_vec(),
                rhs: rhs.shape.dims().to_vec(),
            });
        }
        let b = rhs.data();
        let buf = self.data_mut();
        par::for_each_row_chunk_mut(buf, 1, PAR_GRAIN_OPS, |first, window| {
            let end = first + window.len();
            for (o, &y) in window.iter_mut().zip(&b[first..end]) {
                *o += y;
            }
        });
        Ok(())
    }

    /// Elementwise difference.
    pub fn sub(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_map(rhs, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_map(rhs, "mul", |a, b| a * b)
    }

    /// Elementwise quotient.
    pub fn div(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_map(rhs, "div", |a, b| a / b)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        self.map(|x| -x)
    }

    /// Elementwise `max(x, 0)`.
    pub fn relu(&self) -> Tensor {
        self.map(|x| x.max(0.0))
    }

    /// Elementwise ELU with α = 1 (the paper's σ₂, following GAT).
    pub fn elu(&self) -> Tensor {
        self.map(|x| if x > 0.0 { x } else { x.exp_m1() })
    }

    /// Elementwise logistic sigmoid, numerically stable on both tails.
    pub fn sigmoid(&self) -> Tensor {
        self.map(stable_sigmoid)
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        self.map(|x| x * x)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    // ------------------------------------------------------------------
    // Matrix operations
    // ------------------------------------------------------------------

    /// Matrix product of two rank-2 tensors.
    ///
    /// Uses an i-k-j loop order so the inner loop streams rows of both the
    /// output and `rhs` — cache friendly without blocking at the `n ≤ ~1000`
    /// sizes this reproduction works at. Output rows are computed in
    /// parallel chunks; each row accumulates independently in the serial
    /// loop order, so the result is bit-for-bit identical at any thread
    /// count.
    ///
    /// The inner loop comes in two flavours picked by a cheap deterministic
    /// density probe of the lhs: sparse flow matrices keep the `av == 0.0`
    /// skip (most of a flow row is zeros — skipping the whole `rhs` row is a
    /// real win), while dense matrices (weights, hidden states) take a
    /// branchless loop the autovectorizer handles much better. The probe
    /// depends only on the lhs values, never on the thread count, so the
    /// bitwise-determinism contract is unaffected.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        self.matmul_probed(rhs, None)
    }

    /// [`Tensor::matmul`] with an optional pre-computed density verdict for
    /// the lhs, so compiled-plan replay can probe a stable operand once and
    /// reuse the verdict. `None` probes as usual; `Some(dense)` must equal
    /// what [`Tensor::probe_dense`] would return **right now** — the two
    /// inner loops produce different bits on `±0.0`/non-finite operands, so
    /// a stale verdict would break the bit-identity contract.
    pub fn matmul_probed(&self, rhs: &Tensor, probe: Option<bool>) -> Result<Tensor> {
        let (m, k) = self.shape.as_matrix("matmul")?;
        let (k2, n) = rhs.shape.as_matrix("matmul")?;
        if k != k2 {
            return Err(Error::ShapeMismatch {
                op: "matmul",
                lhs: self.shape.dims().to_vec(),
                rhs: rhs.shape.dims().to_vec(),
            });
        }
        // Degenerate operands (a 0-station shard, an empty horizon slice)
        // have nothing to accumulate; chunking math below would divide by
        // zero-sized rows, so they return their all-zero product up front.
        if m == 0 || n == 0 || k == 0 {
            return Ok(Tensor::zeros(Shape::matrix(m, n)));
        }
        let a = self.data();
        let b = rhs.data();
        let dense = probe.unwrap_or_else(|| lhs_is_dense(a));
        let mut out = Buffer::zeroed(m * n);
        let grain = (PAR_GRAIN_OPS / (k * n).max(1)).max(1);
        par::for_each_row_chunk_mut(&mut out, n, grain, |first_row, window| {
            for (r, o_row) in window.chunks_mut(n).enumerate() {
                let i = first_row + r;
                let a_row = &a[i * k..(i + 1) * k];
                if dense {
                    for (p, &av) in a_row.iter().enumerate() {
                        let b_row = &b[p * n..(p + 1) * n];
                        for (o, &bv) in o_row.iter_mut().zip(b_row) {
                            *o += av * bv;
                        }
                    }
                } else {
                    for (p, &av) in a_row.iter().enumerate() {
                        if av == 0.0 {
                            continue; // flow matrices are sparse; skipping zeros is a real win
                        }
                        let b_row = &b[p * n..(p + 1) * n];
                        for (o, &bv) in o_row.iter_mut().zip(b_row) {
                            *o += av * bv;
                        }
                    }
                }
            }
        });
        Ok(Tensor::from_buffer(Shape::matrix(m, n), out))
    }

    /// The deterministic density verdict [`Tensor::matmul`] would derive
    /// for this tensor as a lhs operand. Exposed so compiled-plan replay
    /// can probe a stable operand once, cache the verdict, and hand it back
    /// through [`Tensor::matmul_probed`].
    pub fn probe_dense(&self) -> bool {
        lhs_is_dense(self.data())
    }

    /// [`Tensor::probe_dense`] for this tensor *read transposed* — exactly
    /// the verdict probing a materialised `self.transpose()` would give,
    /// without materialising it.
    pub fn probe_dense_t(&self) -> Result<bool> {
        let (r, c) = self.shape.as_matrix("probe_dense_t")?;
        Ok(lhs_is_dense_t(self.data(), r, c))
    }

    /// Matrix product with layout flags: computes `op(self) · op(rhs)`
    /// where `op` transposes its operand when the flag is set, **without
    /// materialising the transpose**. `matmul_layout(b, true, false)` is
    /// bit-for-bit `self.transpose()?.matmul(b)`: per output element the
    /// same multiply-add pairs accumulate through one chain in the same
    /// ascending contraction order, and the density probe samples the lhs
    /// in its *effective* (possibly transposed) layout, so even the
    /// sparse-path zero-skips match. The inner loops are 8-wide
    /// hand-unrolled lanes under [`GEMM_KC`] blocking, parallelised over
    /// output rows through [`par`] like every other kernel.
    pub fn matmul_layout(&self, rhs: &Tensor, ta: bool, tb: bool) -> Result<Tensor> {
        self.matmul_layout_probed(rhs, ta, tb, None)
    }

    /// [`Tensor::matmul_layout`] with an optional pre-computed density
    /// verdict (see [`Tensor::matmul_probed`] for the staleness contract).
    pub fn matmul_layout_probed(
        &self,
        rhs: &Tensor,
        ta: bool,
        tb: bool,
        probe: Option<bool>,
    ) -> Result<Tensor> {
        let (ar, ac) = self.shape.as_matrix("matmul")?;
        let (br, bc) = rhs.shape.as_matrix("matmul")?;
        let (m, k) = if ta { (ac, ar) } else { (ar, ac) };
        let (kb, n) = if tb { (bc, br) } else { (br, bc) };
        if k != kb {
            return Err(Error::ShapeMismatch {
                op: "matmul",
                lhs: self.shape.dims().to_vec(),
                rhs: rhs.shape.dims().to_vec(),
            });
        }
        if m == 0 || n == 0 || k == 0 {
            return Ok(Tensor::zeros(Shape::matrix(m, n)));
        }
        let a = self.data();
        let b = rhs.data();
        let dense = probe.unwrap_or_else(|| {
            if ta {
                lhs_is_dense_t(a, ar, ac)
            } else {
                lhs_is_dense(a)
            }
        });
        let mut out = Buffer::zeroed(m * n);
        let grain = (PAR_GRAIN_OPS / (k * n).max(1)).max(1);
        par::for_each_row_chunk_mut(&mut out, n, grain, |first_row, window| {
            if !ta && tb {
                gemm_window_nt(window, first_row, a, b, k, n, dense);
                return;
            }
            if dense && !(ta && tb) {
                // Dense lhs and a streaming rhs: the register-blocked path.
                // (The sparse path must take the per-row zero-skips, and the
                // tt layout is cold — both keep the streaming kernels.)
                gemm_window_blocked(window, first_row, a, b, k, n, ta, ac);
                return;
            }
            for (r, o_row) in window.chunks_mut(n).enumerate() {
                let i = first_row + r;
                match (ta, tb) {
                    (false, false) => gemm_row_nn(o_row, &a[i * k..(i + 1) * k], b, k, n, dense),
                    (true, false) => gemm_row_tn(o_row, a, i, ac, b, k, n, dense),
                    _ => gemm_row_tt(o_row, a, i, ac, b, bc, k, n, dense),
                }
            }
        });
        Ok(Tensor::from_buffer(Shape::matrix(m, n), out))
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// Parallel over output rows (input columns); within each chunk the
    /// gather is tiled in [`TRANSPOSE_TILE`]² blocks so both the contiguous
    /// reads and the strided writes stay inside L1, instead of walking a
    /// full strided column of a large matrix per output row.
    pub fn transpose(&self) -> Result<Tensor> {
        let (r, c) = self.shape.as_matrix("transpose")?;
        // A 0-row or 0-col matrix has nothing to gather, and the chunking
        // arithmetic below (`window.len() / r`, grain from `r`) degenerates
        // on it — return the empty transpose directly.
        if r == 0 || c == 0 {
            return Ok(Tensor::zeros(Shape::matrix(c, r)));
        }
        let data = self.data();
        let mut out = Buffer::zeroed(r * c);
        let grain = (PAR_GRAIN_OPS / r.max(1)).max(1);
        par::for_each_row_chunk_mut(&mut out, r, grain, |first_col, window| {
            let wcols = window.len() / r.max(1);
            for jb in (0..wcols).step_by(TRANSPOSE_TILE) {
                let jend = (jb + TRANSPOSE_TILE).min(wcols);
                for ib in (0..r).step_by(TRANSPOSE_TILE) {
                    let iend = (ib + TRANSPOSE_TILE).min(r);
                    for i in ib..iend {
                        let src_row = &data[i * c..(i + 1) * c];
                        for jj in jb..jend {
                            window[jj * r + i] = src_row[first_col + jj];
                        }
                    }
                }
            }
        });
        Ok(Tensor::from_buffer(Shape::matrix(c, r), out))
    }

    /// Reinterprets the buffer under a new shape of equal length.
    pub fn reshape(&self, shape: Shape) -> Result<Tensor> {
        if shape.len() != self.len() {
            return Err(Error::InvalidArgument(format!(
                "cannot reshape {} ({} elems) into {shape} ({} elems)",
                self.shape,
                self.len(),
                shape.len()
            )));
        }
        Ok(Tensor {
            data: Arc::clone(&self.data),
            shape,
        })
    }

    /// Horizontal concatenation of rank-2 tensors with equal row counts.
    pub fn concat_cols(parts: &[&Tensor]) -> Result<Tensor> {
        if parts.is_empty() {
            return Err(Error::InvalidArgument("concat_cols of zero tensors".into()));
        }
        let (rows, _) = parts[0].shape.as_matrix("concat_cols")?;
        let mut total_cols = 0;
        for p in parts {
            let (r, c) = p.shape.as_matrix("concat_cols")?;
            if r != rows {
                return Err(Error::ShapeMismatch {
                    op: "concat_cols",
                    lhs: parts[0].shape.dims().to_vec(),
                    rhs: p.shape.dims().to_vec(),
                });
            }
            total_cols += c;
        }
        let mut out = Buffer::zeroed(rows * total_cols);
        for i in 0..rows {
            let mut col = i * total_cols;
            for p in parts {
                let src = p.row(i);
                out[col..col + src.len()].copy_from_slice(src);
                col += src.len();
            }
        }
        Ok(Tensor::from_buffer(Shape::matrix(rows, total_cols), out))
    }

    /// Vertical concatenation of rank-2 tensors with equal column counts.
    pub fn concat_rows(parts: &[&Tensor]) -> Result<Tensor> {
        if parts.is_empty() {
            return Err(Error::InvalidArgument("concat_rows of zero tensors".into()));
        }
        let (_, cols) = parts[0].shape.as_matrix("concat_rows")?;
        let mut total_rows = 0;
        for p in parts {
            let (r, c) = p.shape.as_matrix("concat_rows")?;
            if c != cols {
                return Err(Error::ShapeMismatch {
                    op: "concat_rows",
                    lhs: parts[0].shape.dims().to_vec(),
                    rhs: p.shape.dims().to_vec(),
                });
            }
            total_rows += r;
        }
        let mut out = Buffer::zeroed(total_rows * cols);
        let mut at = 0;
        for p in parts {
            let src = p.data();
            out[at..at + src.len()].copy_from_slice(src);
            at += src.len();
        }
        Ok(Tensor::from_buffer(Shape::matrix(total_rows, cols), out))
    }

    /// Extracts rows `[start, end)` of a rank-2 tensor.
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Tensor> {
        let (r, c) = self.shape.as_matrix("slice_rows")?;
        if start > end || end > r {
            return Err(Error::InvalidArgument(format!(
                "slice_rows {start}..{end} out of bounds for {r} rows"
            )));
        }
        Ok(Tensor::from_buffer(
            Shape::matrix(end - start, c),
            Buffer::copy_of(&self.data[start * c..end * c]),
        ))
    }

    // ------------------------------------------------------------------
    // Broadcast helpers (bias adds, row/column scaling)
    // ------------------------------------------------------------------

    /// Adds a `1×c` row vector to every row of an `r×c` matrix.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Result<Tensor> {
        let (r, c) = self.shape.as_matrix("add_row_broadcast")?;
        let (rr, rc) = row.shape.as_matrix("add_row_broadcast")?;
        if rr != 1 || rc != c {
            return Err(Error::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: self.shape.dims().to_vec(),
                rhs: row.shape.dims().to_vec(),
            });
        }
        let mut out = self.data.as_ref().clone();
        let v = row.data();
        let grain = (PAR_GRAIN_OPS / c.max(1)).max(1);
        par::for_each_row_chunk_mut(&mut out, c, grain, |_, window| {
            for o_row in window.chunks_mut(c) {
                for (o, &b) in o_row.iter_mut().zip(v) {
                    *o += b;
                }
            }
        });
        Ok(Tensor::from_buffer(Shape::matrix(r, c), out))
    }

    /// Adds an `r×1` column vector to every column of an `r×c` matrix.
    pub fn add_col_broadcast(&self, col: &Tensor) -> Result<Tensor> {
        let (r, c) = self.shape.as_matrix("add_col_broadcast")?;
        let (cr, cc) = col.shape.as_matrix("add_col_broadcast")?;
        if cc != 1 || cr != r {
            return Err(Error::ShapeMismatch {
                op: "add_col_broadcast",
                lhs: self.shape.dims().to_vec(),
                rhs: col.shape.dims().to_vec(),
            });
        }
        let mut out = self.data.as_ref().clone();
        let v = col.data();
        let grain = (PAR_GRAIN_OPS / c.max(1)).max(1);
        par::for_each_row_chunk_mut(&mut out, c, grain, |first_row, window| {
            for (i, o_row) in window.chunks_mut(c).enumerate() {
                let b = v[first_row + i];
                for o in o_row.iter_mut() {
                    *o += b;
                }
            }
        });
        Ok(Tensor::from_buffer(Shape::matrix(r, c), out))
    }

    /// Multiplies row `i` of an `r×c` matrix by element `i` of an `r×1` column.
    pub fn mul_col_broadcast(&self, col: &Tensor) -> Result<Tensor> {
        let (r, c) = self.shape.as_matrix("mul_col_broadcast")?;
        let (cr, cc) = col.shape.as_matrix("mul_col_broadcast")?;
        if cc != 1 || cr != r {
            return Err(Error::ShapeMismatch {
                op: "mul_col_broadcast",
                lhs: self.shape.dims().to_vec(),
                rhs: col.shape.dims().to_vec(),
            });
        }
        let mut out = self.data.as_ref().clone();
        let v = col.data();
        let grain = (PAR_GRAIN_OPS / c.max(1)).max(1);
        par::for_each_row_chunk_mut(&mut out, c, grain, |first_row, window| {
            for (i, o_row) in window.chunks_mut(c).enumerate() {
                let b = v[first_row + i];
                for o in o_row.iter_mut() {
                    *o *= b;
                }
            }
        });
        Ok(Tensor::from_buffer(Shape::matrix(r, c), out))
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements, as a scalar tensor.
    pub fn sum_all(&self) -> Tensor {
        Tensor::from_scalar(self.data.iter().sum())
    }

    /// Mean of all elements, as a scalar tensor.
    pub fn mean_all(&self) -> Tensor {
        Tensor::from_scalar(self.data.iter().sum::<f32>() / self.len() as f32)
    }

    /// Per-row sums of a rank-2 tensor, as an `r×1` column.
    pub fn sum_cols(&self) -> Result<Tensor> {
        let (r, c) = self.shape.as_matrix("sum_cols")?;
        let mut out = Buffer::zeroed(r);
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.data[i * c..(i + 1) * c].iter().sum();
        }
        Ok(Tensor::from_buffer(Shape::matrix(r, 1), out))
    }

    /// Per-column sums of a rank-2 tensor, as a `1×c` row.
    pub fn sum_rows(&self) -> Result<Tensor> {
        let (r, c) = self.shape.as_matrix("sum_rows")?;
        let mut out = Buffer::zeroed(c);
        for i in 0..r {
            for (o, &v) in out.iter_mut().zip(&self.data[i * c..(i + 1) * c]) {
                *o += v;
            }
        }
        Ok(Tensor::from_buffer(Shape::matrix(1, c), out))
    }

    /// Maximum element (NaN-free inputs assumed); 0.0 for empty tensors.
    pub fn max_all(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
        }
    }

    /// Minimum element; 0.0 for empty tensors.
    pub fn min_all(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().copied().fold(f32::INFINITY, f32::min)
        }
    }

    /// Numerically-stable row-wise softmax of a rank-2 tensor.
    ///
    /// A fully-masked row (every entry `-∞`, e.g. a station whose pairs are
    /// all masked out of the attention) has no finite maximum; dividing by
    /// its zero sum would emit NaN and poison the whole backward pass.
    /// Such rows come back as the uniform distribution `1/c` instead —
    /// attention spread evenly, matching the softmax limit as a symmetric
    /// mask lifts.
    pub fn softmax_rows(&self) -> Result<Tensor> {
        let (r, c) = self.shape.as_matrix("softmax_rows")?;
        // Degenerate matrices (no rows, or rows of zero width) have no
        // distribution to normalise; return the empty result before the
        // per-row `1/c` uniform fill can divide by zero.
        if r == 0 || c == 0 {
            return Ok(Tensor::zeros(Shape::matrix(r, c)));
        }
        let data = self.data();
        let mut out = Buffer::zeroed(r * c);
        let grain = (PAR_GRAIN_OPS / c.max(1)).max(1);
        par::for_each_row_chunk_mut(&mut out, c, grain, |first_row, window| {
            for (rr, o_row) in window.chunks_mut(c).enumerate() {
                let i = first_row + rr;
                let row = &data[i * c..(i + 1) * c];
                let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                if m == f32::NEG_INFINITY {
                    o_row.fill(1.0 / c as f32);
                    continue;
                }
                let mut sum = 0.0f32;
                for (o, &x) in o_row.iter_mut().zip(row) {
                    let e = (x - m).exp();
                    *o = e;
                    sum += e;
                }
                for o in o_row.iter_mut() {
                    *o /= sum;
                }
            }
        });
        Ok(Tensor::from_buffer(Shape::matrix(r, c), out))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// True when every pair of elements differs by at most `tol`.
    pub fn approx_eq(&self, rhs: &Tensor, tol: f32) -> bool {
        self.shape == rhs.shape
            && self
                .data
                .iter()
                .zip(rhs.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

/// Deterministic density probe for [`Tensor::matmul`]'s lhs: samples at most
/// 1024 evenly-strided elements and calls the matrix dense when fewer than
/// 1/8 of the samples are exactly zero. Cheap relative to the `m·k·n`
/// product it steers, and a function of the data alone — never of the
/// thread count — so kernel determinism is preserved.
pub(crate) fn lhs_is_dense(a: &[f32]) -> bool {
    if a.is_empty() {
        return true;
    }
    let stride = (a.len() / 1024).max(1);
    let mut sampled = 0u32;
    let mut zeros = 0u32;
    let mut idx = 0;
    while idx < a.len() {
        // lint: allow(L004): idx < a.len() is the loop condition.
        if a[idx] == 0.0 {
            zeros += 1;
        }
        sampled += 1;
        idx += stride;
    }
    zeros * 8 < sampled
}

/// [`lhs_is_dense`] over the flat layout of `aᵀ` for `a` stored `rows×cols`
/// row-major, without materialising the transpose. Visits exactly the
/// elements probing a materialised transpose would visit (same length, same
/// stride, same order), so the verdict — and therefore the inner-loop
/// choice — is identical to the eager materialise-then-probe path.
pub(crate) fn lhs_is_dense_t(a: &[f32], rows: usize, cols: usize) -> bool {
    if a.is_empty() {
        return true;
    }
    debug_assert_eq!(a.len(), rows * cols);
    let stride = (a.len() / 1024).max(1);
    let mut sampled = 0u32;
    let mut zeros = 0u32;
    // Flat index `t` of the transposed layout maps to stored element
    // (t % rows, t / rows). Track the quotient/remainder pair incrementally —
    // `stride` is constant, so each step adds (stride / rows, stride % rows)
    // with a single carry — instead of a div+mod per sample. Same positions,
    // same order, same verdict; this probe runs on every transposed-lhs GEMM
    // in the compiled backward pass, where the division was measurable.
    let (dq, dr) = (stride / rows, stride % rows);
    let (mut q, mut r) = (0usize, 0usize);
    let mut t = 0;
    while t < a.len() {
        // lint: allow(L004): t < a.len() = rows·cols bounds r < rows, q < cols.
        if a[r * cols + q] == 0.0 {
            zeros += 1;
        }
        sampled += 1;
        t += stride;
        q += dq;
        r += dr;
        if r >= rows {
            r -= rows;
            q += 1;
        }
    }
    zeros * 8 < sampled
}

/// One output row of `op(a)·op(b)`, both operands in natural layout:
/// `o[j] += a_row[p]·b[p][j]` with `p` ascending — the reference accumulation
/// order of [`Tensor::matmul`]. The inner loop is the *same* `zip` streaming
/// loop as the eager kernel: every output element has its own accumulation
/// chain, so LLVM vectorizes across `j` without reordering any float adds.
/// (A hand-unrolled 8-lane version of this loop benchmarked ~4× *slower* —
/// the indexed lane bodies defeat the autovectorizer; see
/// `examples/gemm_bench.rs`.)
fn gemm_row_nn(o_row: &mut [f32], a_row: &[f32], b: &[f32], _k: usize, n: usize, dense: bool) {
    for (p, &av) in a_row.iter().enumerate() {
        if !dense && av == 0.0 {
            continue; // the sparse flow-matrix skip, exactly as matmul takes it
        }
        let b_row = &b[p * n..(p + 1) * n];
        for (o, &bv) in o_row.iter_mut().zip(b_row) {
            *o += av * bv;
        }
    }
}

/// Dense `op(a)·b` over one parallel window of output rows, register
/// blocked: a 4-row × 16-column accumulator tile lives entirely in vector
/// registers, so each contraction step issues eight fused multiply-adds
/// against two `b` vector loads instead of re-walking the output row
/// through memory (the streaming kernels' 1:3 fma-to-memory-op ratio is
/// what held [`Tensor::matmul`] at ~2.5 GFLOP/s). Works for both the
/// natural (`ta=false`) and transposed (`ta=true`) lhs — the lhs element
/// is a scalar broadcast either way, only its address changes.
///
/// Bit-identity: every output element still owns exactly one accumulator,
/// advanced in ascending contraction order — the same per-element chain
/// the eager dense loop produces; row/column blocking only changes which
/// *independent* chains run interleaved.
#[allow(clippy::too_many_arguments)]
fn gemm_window_blocked(
    window: &mut [f32],
    first_row: usize,
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    ta: bool,
    a_cols: usize,
) {
    let rows = window.len() / n.max(1);
    let rb_end = rows - rows % 4;
    let mut r = 0;
    while r < rb_end {
        let i0 = first_row + r;
        // Descend 16 → 8 → 4-wide column tiles so awkward widths (n = 28:
        // 16 + 8 + 4) stay fully register-blocked; only n % 4 columns fall
        // back to the streaming loop.
        let mut jb = 0;
        while jb + 16 <= n {
            gemm_block_tile::<16>(window, r, i0, a, b, k, n, jb, ta, a_cols);
            jb += 16;
        }
        if jb + 8 <= n {
            gemm_block_tile::<8>(window, r, i0, a, b, k, n, jb, ta, a_cols);
            jb += 8;
        }
        if jb + 4 <= n {
            gemm_block_tile::<4>(window, r, i0, a, b, k, n, jb, ta, a_cols);
            jb += 4;
        }
        if jb < n {
            for r4 in 0..4 {
                gemm_blocked_col_tail(window, r + r4, i0 + r4, a, b, k, n, jb, ta, a_cols);
            }
        }
        r += 4;
    }
    for rr in rb_end..rows {
        let i = first_row + rr;
        let o_row = &mut window[rr * n..(rr + 1) * n];
        if ta {
            gemm_row_tn(o_row, a, i, a_cols, b, k, n, true);
        } else {
            gemm_row_nn(o_row, &a[i * k..(i + 1) * k], b, k, n, true);
        }
    }
}

/// One 4-row × `NC`-column register tile of [`gemm_window_blocked`]: `NC`
/// is a const so the accumulator block is a true fixed-size register
/// array at every tile width.
#[allow(clippy::too_many_arguments)]
fn gemm_block_tile<const NC: usize>(
    window: &mut [f32],
    r: usize,
    i0: usize,
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    jb: usize,
    ta: bool,
    a_cols: usize,
) {
    let mut acc = [[0f32; NC]; 4];
    for p in 0..k {
        let bvec = &b[p * n + jb..p * n + jb + NC];
        // lint: allow(L004): p < k and i0+3 < m bound every index.
        let avs = if ta {
            let col = &a[p * a_cols..p * a_cols + a_cols];
            [col[i0], col[i0 + 1], col[i0 + 2], col[i0 + 3]]
        } else {
            [
                a[i0 * k + p],
                a[(i0 + 1) * k + p],
                a[(i0 + 2) * k + p],
                a[(i0 + 3) * k + p],
            ]
        };
        for (accr, &av) in acc.iter_mut().zip(&avs) {
            for (o, &bv) in accr.iter_mut().zip(bvec) {
                *o += av * bv;
            }
        }
    }
    for (r4, accr) in acc.iter().enumerate() {
        window[(r + r4) * n + jb..(r + r4) * n + jb + NC].copy_from_slice(accr);
    }
}

/// The `n % 16` leftover columns of one blocked row, streamed with the
/// same ascending-`p` per-element chains.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked_col_tail(
    window: &mut [f32],
    wr: usize,
    i: usize,
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    jb: usize,
    ta: bool,
    a_cols: usize,
) {
    let o_tail = &mut window[wr * n + jb..(wr + 1) * n];
    for p in 0..k {
        let av = if ta { a[p * a_cols + i] } else { a[i * k + p] };
        let b_seg = &b[p * n + jb..(p + 1) * n];
        for (o, &bv) in o_tail.iter_mut().zip(b_seg) {
            *o += av * bv;
        }
    }
}

/// `a·bᵀ` over one parallel window of output rows (`b` stored `n×k`).
///
/// The classic BLAS pack: for each block of 8 output columns, [`GEMM_KC`]
/// contraction steps of the 8 corresponding `b` rows are copied into an
/// 8 KiB p-major stack tile, amortised over every row of the window. The
/// packed lanes then read contiguous memory, so the 8 per-output
/// accumulation chains vectorize; chains carry across p-tiles with `p`
/// strictly ascending, which keeps every output element bit-identical to
/// the eager `transpose()+matmul` pair.
fn gemm_window_nt(
    window: &mut [f32],
    first_row: usize,
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    dense: bool,
) {
    let rows = window.len() / n.max(1);
    let nb = n - n % 8;
    let mut pack = [0f32; 8 * GEMM_KC];
    let mut jb = 0;
    while jb < nb {
        let mut pb = 0;
        while pb < k {
            let pe = (pb + GEMM_KC).min(k);
            for l in 0..8 {
                let b_row = &b[(jb + l) * k..(jb + l) * k + k];
                for p in pb..pe {
                    // lint: allow(L004): (p-pb) < GEMM_KC by tile bounds.
                    pack[(p - pb) * 8 + l] = b_row[p];
                }
            }
            let rb = rows - rows % 4;
            let mut r = 0;
            while r < rb {
                gemm_rows4_nt_packed(window, r, first_row, a, &pack, pb, pe, k, n, jb, dense);
                r += 4;
            }
            for r in rb..rows {
                let i = first_row + r;
                let a_row = &a[i * k..(i + 1) * k];
                let acc = &mut window[r * n + jb..r * n + jb + 8];
                gemm_row_nt_packed(acc, a_row, &pack, pb, pe, dense);
            }
            pb = pe;
        }
        jb += 8;
    }
    if nb < n {
        for r in 0..rows {
            let i = first_row + r;
            gemm_row_nt_tail(
                &mut window[r * n..(r + 1) * n],
                &a[i * k..(i + 1) * k],
                b,
                k,
                nb,
                dense,
            );
        }
    }
}

/// Four output rows' 8-column accumulator blocks advanced through one
/// packed p-tile together, so each packed lane load feeds four fused
/// multiply-adds. Accumulators load from and store back to the output
/// window — per-element chains still carry across p-tiles in ascending
/// order, and the sparse zero-skip stays per (row, p) exactly as the
/// single-row kernel takes it.
#[allow(clippy::too_many_arguments)]
fn gemm_rows4_nt_packed(
    window: &mut [f32],
    r0: usize,
    first_row: usize,
    a: &[f32],
    pack: &[f32],
    pb: usize,
    pe: usize,
    k: usize,
    n: usize,
    jb: usize,
    dense: bool,
) {
    let mut acc = [[0f32; 8]; 4];
    for (r4, accr) in acc.iter_mut().enumerate() {
        accr.copy_from_slice(&window[(r0 + r4) * n + jb..(r0 + r4) * n + jb + 8]);
    }
    for (p, lane) in (pb..pe).zip(pack.chunks_exact(8)) {
        for (r4, accr) in acc.iter_mut().enumerate() {
            // lint: allow(L004): first_row+r0+3 < m and p < k bound the index.
            let av = a[(first_row + r0 + r4) * k + p];
            if !dense && av == 0.0 {
                continue;
            }
            for (o, &bv) in accr.iter_mut().zip(lane) {
                *o += av * bv;
            }
        }
    }
    for (r4, accr) in acc.iter().enumerate() {
        window[(r0 + r4) * n + jb..(r0 + r4) * n + jb + 8].copy_from_slice(accr);
    }
}

/// The inner lanes of [`gemm_window_nt`]: one output row's 8-column
/// accumulator block advanced through one packed p-tile.
fn gemm_row_nt_packed(
    acc_slice: &mut [f32],
    a_row: &[f32],
    pack: &[f32],
    pb: usize,
    pe: usize,
    dense: bool,
) {
    // A fixed-size register block: LLVM keeps it in one vector register
    // instead of re-loading the output slice every contraction step.
    let mut acc = [0f32; 8];
    acc.copy_from_slice(&acc_slice[..8]);
    if dense {
        for (p, lane) in (pb..pe).zip(pack.chunks_exact(8)) {
            let av = a_row[p];
            for (o, &bv) in acc.iter_mut().zip(lane) {
                *o += av * bv;
            }
        }
    } else {
        for (p, lane) in (pb..pe).zip(pack.chunks_exact(8)) {
            let av = a_row[p];
            if av == 0.0 {
                continue;
            }
            for (o, &bv) in acc.iter_mut().zip(lane) {
                *o += av * bv;
            }
        }
    }
    acc_slice[..8].copy_from_slice(&acc);
}

/// Leftover `a·bᵀ` columns (`n % 8`) as sequential dot products — `p`
/// ascending per output with the same sparse zero-skip, bit-identical to
/// the packed lanes.
fn gemm_row_nt_tail(o_row: &mut [f32], a_row: &[f32], b: &[f32], k: usize, j0: usize, dense: bool) {
    for (jj, o) in (j0..).zip(o_row[j0..].iter_mut()) {
        let b_row = &b[jj * k..(jj + 1) * k];
        let mut acc = 0f32;
        for (&av, &bv) in a_row.iter().zip(b_row) {
            if !dense && av == 0.0 {
                continue;
            }
            acc += av * bv;
        }
        *o = acc;
    }
}

/// One output row of `aᵀ·b` (`a` stored `k×m` with `m = a_cols`): the lhs
/// walks a strided column of `a` (one element per contraction step), the
/// rhs streams rows through the same `zip` loop as the natural-layout
/// kernel — no transpose is ever materialised.
#[allow(clippy::too_many_arguments)]
fn gemm_row_tn(
    o_row: &mut [f32],
    a: &[f32],
    i: usize,
    a_cols: usize,
    b: &[f32],
    k: usize,
    n: usize,
    dense: bool,
) {
    for p in 0..k {
        let av = a[p * a_cols + i];
        if !dense && av == 0.0 {
            continue;
        }
        let b_row = &b[p * n..(p + 1) * n];
        for (o, &bv) in o_row.iter_mut().zip(b_row) {
            *o += av * bv;
        }
    }
}

/// One output row of `aᵀ·bᵀ` — both operands strided. Rare (no hot path
/// produces it), kept for completeness with the same ordering contract.
#[allow(clippy::too_many_arguments)]
fn gemm_row_tt(
    o_row: &mut [f32],
    a: &[f32],
    i: usize,
    a_cols: usize,
    b: &[f32],
    b_cols: usize,
    k: usize,
    _n: usize,
    dense: bool,
) {
    for (j, o) in o_row.iter_mut().enumerate() {
        let mut acc = *o;
        for p in 0..k {
            let av = a[p * a_cols + i];
            if !dense && av == 0.0 {
                continue;
            }
            acc += av * b[j * b_cols + p];
        }
        *o = acc;
    }
}

/// Logistic sigmoid that avoids `exp` overflow on large negative inputs.
pub(crate) fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={}, ", self.shape)?;
        if self.len() <= 16 {
            write!(f, "data={:?})", &self.data[..])
        } else {
            write!(
                f,
                "data=[{:.4}, {:.4}, .. {} elems])",
                self.data[0],
                self.data[1],
                self.len()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: &[&[f32]]) -> Tensor {
        Tensor::from_rows(rows)
    }

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(Shape::matrix(2, 3)).data(), &[0.0; 6]);
        assert_eq!(Tensor::ones(Shape::vector(2)).data(), &[1.0, 1.0]);
        assert_eq!(Tensor::eye(2).data(), &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(Tensor::from_scalar(3.5).scalar(), 3.5);
        assert!(Tensor::from_vec(Shape::matrix(2, 2), vec![1.0]).is_err());
    }

    #[test]
    fn clone_is_cow() {
        let a = t(&[&[1.0, 2.0]]);
        let mut b = a.clone();
        b.data_mut()[0] = 9.0;
        assert_eq!(a.data()[0], 1.0);
        assert_eq!(b.data()[0], 9.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = t(&[&[1.0, -2.0], &[3.0, 4.0]]);
        let b = t(&[&[2.0, 2.0], &[2.0, 2.0]]);
        assert_eq!(a.add(&b).unwrap().data(), &[3.0, 0.0, 5.0, 6.0]);
        assert_eq!(a.sub(&b).unwrap().data(), &[-1.0, -4.0, 1.0, 2.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[2.0, -4.0, 6.0, 8.0]);
        assert_eq!(a.div(&b).unwrap().data(), &[0.5, -1.0, 1.5, 2.0]);
        assert_eq!(a.neg().data(), &[-1.0, 2.0, -3.0, -4.0]);
        assert_eq!(a.relu().data(), &[1.0, 0.0, 3.0, 4.0]);
        assert_eq!(a.abs().data(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.square().data(), &[1.0, 4.0, 9.0, 16.0]);
        assert_eq!(a.add_scalar(1.0).data(), &[2.0, -1.0, 4.0, 5.0]);
        assert_eq!(a.mul_scalar(2.0).data(), &[2.0, -4.0, 6.0, 8.0]);
    }

    #[test]
    fn elementwise_shape_mismatch() {
        let a = t(&[&[1.0, 2.0]]);
        let b = t(&[&[1.0], &[2.0]]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn elu_matches_definition() {
        let a = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        let e = a.elu();
        assert!((e.data()[0] - ((-1.0f32).exp() - 1.0)).abs() < 1e-6);
        assert_eq!(e.data()[1], 0.0);
        assert_eq!(e.data()[2], 2.0);
    }

    #[test]
    fn sigmoid_is_stable_on_tails() {
        let a = Tensor::from_slice(&[-100.0, 0.0, 100.0]);
        let s = a.sigmoid();
        assert!(s.data()[0] >= 0.0 && s.data()[0] < 1e-6);
        assert!((s.data()[1] - 0.5).abs() < 1e-6);
        assert!(s.data()[2] > 1.0 - 1e-6 && s.data()[2] <= 1.0);
        assert!(s.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn matmul_known_values() {
        let a = t(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = t(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_and_mismatch() {
        let a = t(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!(a.matmul(&Tensor::eye(2)).unwrap().approx_eq(&a, 1e-6));
        assert!(a.matmul(&t(&[&[1.0, 2.0, 3.0]])).is_err());
    }

    #[test]
    fn matmul_skips_zero_rows_correctly() {
        // The zero-skip fast path must not change results.
        let a = t(&[&[0.0, 1.0], &[2.0, 0.0]]);
        let b = t(&[&[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.matmul(&b).unwrap().data(), &[5.0, 6.0, 6.0, 8.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let a = t(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let tt = a.transpose().unwrap();
        assert_eq!(tt.shape().dims(), &[3, 2]);
        assert_eq!(tt.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert!(tt.transpose().unwrap().approx_eq(&a, 0.0));
    }

    #[test]
    fn reshape_shares_data() {
        let a = t(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let r = a.reshape(Shape::vector(4)).unwrap();
        assert_eq!(r.data(), a.data());
        assert!(a.reshape(Shape::vector(5)).is_err());
    }

    #[test]
    fn concat_cols_and_rows() {
        let a = t(&[&[1.0], &[2.0]]);
        let b = t(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = Tensor::concat_cols(&[&a, &b]).unwrap();
        assert_eq!(c.shape().dims(), &[2, 3]);
        assert_eq!(c.data(), &[1.0, 3.0, 4.0, 2.0, 5.0, 6.0]);

        let d = Tensor::concat_rows(&[&b, &b]).unwrap();
        assert_eq!(d.shape().dims(), &[4, 2]);

        assert!(Tensor::concat_cols(&[]).is_err());
        let bad = t(&[&[1.0]]);
        assert!(Tensor::concat_cols(&[&a, &bad]).is_err());
    }

    #[test]
    fn slice_rows_bounds() {
        let a = t(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let s = a.slice_rows(1, 3).unwrap();
        assert_eq!(s.data(), &[3.0, 4.0, 5.0, 6.0]);
        assert!(a.slice_rows(2, 4).is_err());
    }

    #[test]
    fn broadcast_ops() {
        let a = t(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let row = t(&[&[10.0, 20.0]]);
        let col = t(&[&[1.0], &[2.0]]);
        assert_eq!(
            a.add_row_broadcast(&row).unwrap().data(),
            &[11.0, 22.0, 13.0, 24.0]
        );
        assert_eq!(
            a.add_col_broadcast(&col).unwrap().data(),
            &[2.0, 3.0, 5.0, 6.0]
        );
        assert_eq!(
            a.mul_col_broadcast(&col).unwrap().data(),
            &[1.0, 2.0, 6.0, 8.0]
        );
        assert!(a.add_row_broadcast(&col).is_err());
        assert!(a.add_col_broadcast(&row).is_err());
    }

    #[test]
    fn reductions() {
        let a = t(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.sum_all().scalar(), 10.0);
        assert_eq!(a.mean_all().scalar(), 2.5);
        assert_eq!(a.sum_cols().unwrap().data(), &[3.0, 7.0]);
        assert_eq!(a.sum_rows().unwrap().data(), &[4.0, 6.0]);
        assert_eq!(a.max_all(), 4.0);
        assert_eq!(a.min_all(), 1.0);
    }

    #[test]
    fn softmax_rows_sums_to_one_and_is_stable() {
        let a = t(&[&[1000.0, 1000.0], &[0.0, f32::ln(3.0)]]);
        let s = a.softmax_rows().unwrap();
        assert!((s.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!((s.get2(0, 0) - 0.5).abs() < 1e-6);
        assert!((s.get2(1, 1) - 0.75).abs() < 1e-5);
        assert!(s.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn frobenius_norm_known() {
        let a = t(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    /// Regression: a fully-masked attention row (all `-inf`) used to divide
    /// by a zero sum and emit NaN; it must come back uniform instead.
    #[test]
    fn softmax_fully_masked_row_is_uniform_not_nan() {
        let ninf = f32::NEG_INFINITY;
        let a = t(&[&[ninf, ninf, ninf, ninf], &[0.0, 0.0, ninf, ninf]]);
        let s = a.softmax_rows().unwrap();
        assert!(
            s.data().iter().all(|v| v.is_finite()),
            "masked row leaked NaN/inf: {s:?}"
        );
        assert_eq!(s.row(0), &[0.25; 4], "fully-masked row must be uniform");
        // Partially-masked rows keep exact softmax semantics.
        assert!((s.get2(1, 0) - 0.5).abs() < 1e-6);
        assert_eq!(s.get2(1, 2), 0.0);
        assert!((s.row(1).iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    /// The determinism contract of `tensor::par`: every parallelised kernel
    /// must produce bit-for-bit identical buffers at 1 thread and 4 threads.
    #[test]
    fn kernels_are_bitwise_identical_across_thread_counts() {
        // Pseudo-random but deterministic inputs, big enough to cross the
        // parallel dispatch thresholds.
        let n = 97;
        let fill = |seed: u32| -> Tensor {
            let mut state = seed;
            let data = (0..n * n)
                .map(|_| {
                    state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                    (state >> 8) as f32 / (1 << 24) as f32 - 0.5
                })
                .collect();
            Tensor::from_vec(Shape::matrix(n, n), data).unwrap()
        };
        let a = fill(1);
        let b = fill(2);
        let col = a.sum_cols().unwrap();
        let row = a.sum_rows().unwrap();

        let run = || {
            vec![
                a.matmul(&b).unwrap(),
                a.softmax_rows().unwrap(),
                a.transpose().unwrap(),
                a.add(&b).unwrap(),
                a.map(|x| x.tanh()),
                a.add_row_broadcast(&row).unwrap(),
                a.add_col_broadcast(&col).unwrap(),
                a.mul_col_broadcast(&col).unwrap(),
            ]
        };
        par::set_thread_override(Some(1));
        let serial = run();
        par::set_thread_override(Some(4));
        let parallel = run();
        par::set_thread_override(None);

        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(
                s.data(),
                p.data(),
                "thread count changed kernel bits (shape {})",
                s.shape()
            );
        }
    }

    /// Regression: 0-row / 0-col matrices used to hit degenerate chunking
    /// arithmetic (`window.len() / r` with `r = 0`, zero-grain chunk math)
    /// in `transpose`, `matmul`, and `softmax_rows`. They must return the
    /// correctly-shaped empty (or zero) result instead.
    #[test]
    fn degenerate_empty_shapes() {
        let zr = Tensor::zeros(Shape::matrix(0, 5)); // 0×n
        let zc = Tensor::zeros(Shape::matrix(5, 0)); // n×0
        let b = Tensor::ones(Shape::matrix(5, 4));

        let t = zr.transpose().unwrap();
        assert_eq!((t.shape().rows(), t.shape().cols()), (5, 0));
        let t = zc.transpose().unwrap();
        assert_eq!((t.shape().rows(), t.shape().cols()), (0, 5));

        // m = 0: empty output.
        let p = zr.matmul(&b).unwrap();
        assert_eq!((p.shape().rows(), p.shape().cols()), (0, 4));
        // k = 0: non-empty output, all zeros (empty contraction).
        let p = zc.matmul(&zr).unwrap();
        assert_eq!((p.shape().rows(), p.shape().cols()), (5, 5));
        assert!(p.data().iter().all(|&v| v == 0.0));
        // n = 0 via the layout-flag entry point too: op(rhs) is 4×0.
        let p = b
            .matmul_layout(&Tensor::zeros(Shape::matrix(0, 4)), false, true)
            .unwrap();
        assert_eq!((p.shape().rows(), p.shape().cols()), (5, 0));

        let s = zr.softmax_rows().unwrap();
        assert_eq!((s.shape().rows(), s.shape().cols()), (0, 5));
        let s = zc.softmax_rows().unwrap();
        assert_eq!((s.shape().rows(), s.shape().cols()), (5, 0));
    }

    /// The layout-flag GEMM must be bit-identical to materialising the
    /// transpose and calling plain `matmul`, for every (ta, tb) combination,
    /// for dense *and* sparse lhs (both probe branches), at 1 and 4 threads.
    #[test]
    fn gemm_layout_flags_match_materialized_transpose_bitwise() {
        let fill = |seed: u32, r: usize, c: usize, sparse: bool| -> Tensor {
            let mut state = seed;
            let data = (0..r * c)
                .map(|_| {
                    state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                    let v = (state >> 8) as f32 / (1 << 24) as f32 - 0.5;
                    if sparse && !state.is_multiple_of(4) {
                        0.0
                    } else {
                        v
                    }
                })
                .collect();
            Tensor::from_vec(Shape::matrix(r, c), data).unwrap()
        };
        // Odd dims exercise the non-multiple-of-8 lane tails; > GEMM_KC
        // contraction would need huge inputs, so rely on the tail loop
        // equivalence (accumulators carry across blocks regardless).
        let (m, k, n) = (13, 37, 21);
        for sparse in [false, true] {
            let a_nat = fill(7, m, k, sparse); // m×k, natural lhs
            let a_t = a_nat.transpose().unwrap(); // k×m, lhs for ta=true
            let b_nat = fill(11, k, n, false); // k×n
            let b_t = b_nat.transpose().unwrap(); // n×k, rhs for tb=true
            let want = a_nat.matmul(&b_nat).unwrap();
            for threads in [1usize, 4] {
                par::set_thread_override(Some(threads));
                let cases = [
                    a_nat.matmul_layout(&b_nat, false, false).unwrap(),
                    a_nat.matmul_layout(&b_t, false, true).unwrap(),
                    a_t.matmul_layout(&b_nat, true, false).unwrap(),
                    a_t.matmul_layout(&b_t, true, true).unwrap(),
                ];
                par::set_thread_override(None);
                for (i, got) in cases.iter().enumerate() {
                    let same = want
                        .data()
                        .iter()
                        .zip(got.data())
                        .all(|(w, g)| w.to_bits() == g.to_bits());
                    assert!(
                        same,
                        "layout case {i} (sparse={sparse}, threads={threads}) \
                         diverged from materialized-transpose matmul"
                    );
                }
            }
        }
    }

    /// `probe_dense_t` (virtual-transpose density probe) must agree with
    /// materialising the transpose and probing it, because the kernel branch
    /// it picks must match what eager replay would have picked.
    #[test]
    fn transposed_probe_matches_materialized_probe() {
        let fill = |seed: u32, zero_every: u32| -> Tensor {
            let mut state = seed;
            let data = (0..40 * 33)
                .map(|_| {
                    state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                    if state.is_multiple_of(zero_every) {
                        0.0
                    } else {
                        (state >> 8) as f32 / (1 << 24) as f32
                    }
                })
                .collect();
            Tensor::from_vec(Shape::matrix(40, 33), data).unwrap()
        };
        for zero_every in [2u32, 3, 100] {
            let a = fill(zero_every, zero_every);
            assert_eq!(
                a.probe_dense_t().unwrap(),
                a.transpose().unwrap().probe_dense(),
                "virtual and materialized transpose probes disagree \
                 (zero_every={zero_every})"
            );
        }
    }

    /// A cached probe verdict injected into `matmul_probed` must reproduce
    /// the fresh-probe result bitwise — both when the hint agrees with the
    /// probe and (same kernel contract) when forced to the other branch on
    /// an all-dense matrix, where both branches do identical work.
    #[test]
    fn cached_probe_verdict_matches_fresh() {
        let a = t(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0]]);
        let b = t(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let fresh = a.matmul(&b).unwrap();
        let verdict = a.probe_dense();
        let cached = a.matmul_probed(&b, Some(verdict)).unwrap();
        assert_eq!(fresh.data(), cached.data());
        // Sparse-skip only elides exact-zero terms, so even the "wrong"
        // branch is numerically identical here; the contract is that a
        // cached verdict selects the same code path a fresh probe would.
        let other = a.matmul_probed(&b, Some(!verdict)).unwrap();
        assert_eq!(fresh.data(), other.data());
    }
}
