// lint: allow-file(L001, L002, L003, L004): per the documented Panics
// contract, backward closures re-run ops whose shapes the forward pass
// already validated; a failure here is a tape-construction bug, not input.
//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] records every operation of one forward pass as a node on a
//! tape. [`Var`] handles are cheap (an `Rc` plus an index) and mirror the
//! [`Tensor`] API. Calling [`Var::backward`] seeds the output gradient with
//! ones and sweeps the tape in reverse insertion order — insertion order is a
//! topological order by construction, so no explicit sort is needed.
//!
//! Model parameters live *outside* the tape in [`Param`] cells; registering
//! one with [`Graph::param`] links the tape node back to the cell so the
//! backward sweep can deposit gradients where the optimizer will find them.
//! A fresh graph is built per training step (define-by-run), which keeps
//! memory proportional to one step and makes control flow (layer counts,
//! head counts from configuration) trivial.
//!
//! # Panics
//!
//! Unlike the raw [`Tensor`] API, `Var` operations **panic** on shape
//! mismatches. A mismatch on the tape is a model-construction bug — the
//! shapes are fully determined by configuration validated up front — and
//! threading `Result` through every arithmetic expression would bury the
//! model equations. The panic messages carry the op name and both shapes.
//!
//! Code whose shapes are *not* validated up front — anything fed by an
//! external request, such as a serving worker — must use the fallible
//! variants ([`Var::try_matmul`], [`Var::try_transpose`]) which surface the
//! mismatch as a [`crate::Error`] at graph-build time instead of killing
//! the thread.

use crate::shape::Shape;
use crate::tensor::Tensor;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Gradient contributions flowing to parent nodes: `(parent_id, grad)`.
type Contribs = Vec<(usize, Tensor)>;

/// Backward function of one tape node. Receives the node's output gradient
/// and returns the contributions to each parent. Captured tensors are cheap
/// `Arc` clones of forward values.
type BackwardFn = Box<dyn Fn(&Tensor) -> Contribs>;

/// The operation a tape node records. Together with the parent ids this is
/// enough for a static analyzer to re-derive every output shape *without*
/// executing kernels (the `stgnn-analyze` crate's tape validator), so each
/// payload carries exactly the static arguments that determine the output
/// shape.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Constant input ([`Graph::leaf`]).
    Leaf,
    /// Parameter read ([`Graph::param`]); the cell's name is surfaced in
    /// [`NodeInfo::param`].
    Param,
    /// Elementwise sum.
    Add,
    /// Elementwise difference.
    Sub,
    /// Elementwise product.
    Mul,
    /// Elementwise quotient.
    Div,
    /// Adds a scalar to every element.
    AddScalar(f32),
    /// Scales every element.
    MulScalar(f32),
    /// Elementwise negation.
    Neg,
    /// Matrix product.
    Matmul,
    /// Matrix transpose.
    Transpose,
    /// Reinterpretation under a new shape of equal length.
    Reshape(Shape),
    /// Row extraction `[start, end)`.
    SliceRows { start: usize, end: usize },
    /// Rectified linear unit.
    Relu,
    /// ELU with α = 1.
    Elu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Elementwise exponential.
    Exp,
    /// Elementwise square.
    Square,
    /// Elementwise absolute value.
    Abs,
    /// Elementwise square root.
    Sqrt,
    /// Row-wise softmax.
    SoftmaxRows,
    /// Inverted dropout with the given drop rate.
    Dropout { rate: f32 },
    /// Adds a `1×c` row vector to every row.
    AddRowBroadcast,
    /// Adds an `r×1` column vector to every column.
    AddColBroadcast,
    /// Scales row `i` by element `i` of an `r×1` column vector.
    MulColBroadcast,
    /// Grouped elementwise row max-pooling; output row `i` pools the input
    /// rows in `groups[i]`.
    RowsMaxPool { groups: Vec<Vec<usize>> },
    /// Sum of all elements (scalar output).
    SumAll,
    /// Mean of all elements (scalar output).
    MeanAll,
    /// Per-row sums, `r×c → r×1`.
    SumCols,
    /// Per-column sums, `r×c → 1×c`.
    SumRows,
    /// Horizontal concatenation of matrices.
    ConcatCols,
}

impl Op {
    /// The op's name as it appears in kernel errors, tape panics and
    /// analyzer diagnostics — one vocabulary everywhere.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Leaf => "leaf",
            Op::Param => "param",
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Mul => "mul",
            Op::Div => "div",
            Op::AddScalar(_) => "add_scalar",
            Op::MulScalar(_) => "mul_scalar",
            Op::Neg => "neg",
            Op::Matmul => "matmul",
            Op::Transpose => "transpose",
            Op::Reshape(_) => "reshape",
            Op::SliceRows { .. } => "slice_rows",
            Op::Relu => "relu",
            Op::Elu => "elu",
            Op::Sigmoid => "sigmoid",
            Op::Tanh => "tanh",
            Op::Exp => "exp",
            Op::Square => "square",
            Op::Abs => "abs",
            Op::Sqrt => "sqrt",
            Op::SoftmaxRows => "softmax_rows",
            Op::Dropout { .. } => "dropout",
            Op::AddRowBroadcast => "add_row_broadcast",
            Op::AddColBroadcast => "add_col_broadcast",
            Op::MulColBroadcast => "mul_col_broadcast",
            Op::RowsMaxPool { .. } => "rows_max_pool",
            Op::SumAll => "sum_all",
            Op::MeanAll => "mean_all",
            Op::SumCols => "sum_cols",
            Op::SumRows => "sum_rows",
            Op::ConcatCols => "concat_cols",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One node of a [`TapeSnapshot`]: everything the tape recorded about an op.
#[derive(Debug, Clone)]
pub struct NodeInfo {
    /// The recorded operation.
    pub op: Op,
    /// Tape ids of the operands, in operand order. Always strictly smaller
    /// than this node's own id on real tapes.
    pub parents: Vec<usize>,
    /// The output shape the kernel produced at build time (the analyzer
    /// cross-checks its symbolic inference against this).
    pub shape: Shape,
    /// The recorded forward value (cheap COW clone).
    pub value: Tensor,
    /// The linked parameter's name when this node reads a [`Param`] cell.
    pub param: Option<String>,
}

/// An immutable structural copy of a [`Graph`] tape for pre-execution
/// analysis. Node ids are indices into `nodes`; insertion order is a
/// topological order, so parents always precede children.
///
/// Fields are public so tests can hand-assemble *defective* tapes (fan-in
/// mismatches, disconnected parameters) that the panicking `Var` builders
/// would refuse to construct.
#[derive(Debug, Clone, Default)]
pub struct TapeSnapshot {
    /// The recorded nodes, in insertion (= topological) order.
    pub nodes: Vec<NodeInfo>,
}

impl TapeSnapshot {
    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape recorded nothing.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

struct Node {
    op: Op,
    parents: Vec<usize>,
    value: Tensor,
    grad: Option<Tensor>,
    backward: Option<BackwardFn>,
}

/// A learnable parameter: a tensor value plus a gradient accumulator,
/// shared between the model (which reads it into each tape) and the
/// optimizer (which updates it from the accumulated gradient).
pub struct Param {
    name: String,
    value: RefCell<Tensor>,
    grad: RefCell<Tensor>,
}

impl Param {
    /// Creates a named parameter with zeroed gradient accumulator.
    pub fn new(name: impl Into<String>, value: Tensor) -> Rc<Self> {
        let grad = Tensor::zeros(value.shape().clone());
        Rc::new(Param {
            name: name.into(),
            value: RefCell::new(value),
            grad: RefCell::new(grad),
        })
    }

    /// The parameter's name (used in diagnostics and serialization).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A snapshot of the current value (cheap COW clone).
    pub fn value(&self) -> Tensor {
        self.value.borrow().clone()
    }

    /// A snapshot of the accumulated gradient.
    pub fn grad(&self) -> Tensor {
        self.grad.borrow().clone()
    }

    /// Runs `f` against a borrow of the current value — no clone, not even
    /// of the shape vector. The hot-path form of [`Param::value`].
    pub fn with_value<R>(&self, f: impl FnOnce(&Tensor) -> R) -> R {
        f(&self.value.borrow())
    }

    /// Runs `f` against a borrow of the accumulated gradient — the hot-path
    /// form of [`Param::grad`], used by the optimizers every step.
    pub fn with_grad<R>(&self, f: impl FnOnce(&Tensor) -> R) -> R {
        f(&self.grad.borrow())
    }

    /// Replaces the value (used by optimizers).
    pub fn set_value(&self, v: Tensor) {
        debug_assert_eq!(
            v.shape(),
            self.value.borrow().shape(),
            "param {} shape change",
            self.name
        );
        *self.value.borrow_mut() = v;
    }

    /// Adds `g` into the gradient accumulator.
    pub fn accumulate_grad(&self, g: &Tensor) {
        let mut cur = self.grad.borrow_mut();
        *cur = cur.add(g).expect("gradient shape mismatch");
    }

    /// Resets the gradient accumulator to zero.
    pub fn zero_grad(&self) {
        let shape = self.grad.borrow().shape().clone();
        *self.grad.borrow_mut() = Tensor::zeros(shape);
    }

    /// Number of scalar elements in this parameter.
    pub fn num_elements(&self) -> usize {
        self.value.borrow().len()
    }
}

impl fmt::Debug for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Param({}, shape={})",
            self.name,
            self.value.borrow().shape()
        )
    }
}

/// An ordered collection of parameters, shared by a model and its optimizer.
#[derive(Default, Clone)]
pub struct ParamSet {
    params: Vec<Rc<Param>>,
}

impl ParamSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates, registers and returns a new parameter.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> Rc<Param> {
        let p = Param::new(name, value);
        self.params.push(Rc::clone(&p));
        p
    }

    /// Registers an existing parameter.
    pub fn push(&mut self, p: Rc<Param>) {
        self.params.push(p);
    }

    /// Absorbs all parameters of another set (module composition).
    pub fn extend(&mut self, other: &ParamSet) {
        self.params.extend(other.params.iter().cloned());
    }

    /// The registered parameters, in registration order.
    pub fn params(&self) -> &[Rc<Param>] {
        &self.params
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of learnable scalars.
    pub fn num_elements(&self) -> usize {
        self.params.iter().map(|p| p.num_elements()).sum()
    }

    /// Zeroes every gradient accumulator.
    pub fn zero_grads(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Global L2 norm of all gradients (for clipping / diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| p.with_grad(|g| g.data().iter().map(|x| x * x).sum::<f32>()))
            .sum::<f32>()
            .sqrt()
    }
}

struct GraphInner {
    nodes: Vec<Node>,
    /// `(node_id, param)` links for gradient writeback.
    param_links: Vec<(usize, Rc<Param>)>,
}

/// A single forward pass's autodiff tape.
#[derive(Clone)]
pub struct Graph {
    inner: Rc<RefCell<GraphInner>>,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph {
            inner: Rc::new(RefCell::new(GraphInner {
                nodes: Vec::new(),
                param_links: Vec::new(),
            })),
        }
    }

    fn push(
        &self,
        op: Op,
        parents: Vec<usize>,
        value: Tensor,
        backward: Option<BackwardFn>,
    ) -> Var {
        let mut inner = self.inner.borrow_mut();
        let id = inner.nodes.len();
        inner.nodes.push(Node {
            op,
            parents,
            value,
            grad: None,
            backward,
        });
        Var {
            graph: Rc::clone(&self.inner),
            id,
        }
    }

    /// Records a constant leaf. Gradients flow *through* ops into leaves but
    /// are not written back anywhere.
    pub fn leaf(&self, value: Tensor) -> Var {
        self.push(Op::Leaf, Vec::new(), value, None)
    }

    /// Records a parameter leaf; after [`Var::backward`], the gradient at
    /// this node is accumulated into the parameter's grad cell.
    pub fn param(&self, p: &Rc<Param>) -> Var {
        let v = self.push(Op::Param, Vec::new(), p.value(), None);
        self.inner
            .borrow_mut()
            .param_links
            .push((v.id, Rc::clone(p)));
        v
    }

    /// Number of nodes recorded so far.
    pub fn num_nodes(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// A structural copy of the tape recorded so far — ops, parent edges,
    /// shapes, values and parameter links — for pre-execution analysis.
    /// Values are cheap COW clones; taking a snapshot never copies tensor
    /// data and leaves the tape fully usable (including `backward`).
    pub fn snapshot(&self) -> TapeSnapshot {
        let inner = self.inner.borrow();
        let mut nodes: Vec<NodeInfo> = inner
            .nodes
            .iter()
            .map(|n| NodeInfo {
                op: n.op.clone(),
                parents: n.parents.clone(),
                shape: n.value.shape().clone(),
                value: n.value.clone(),
                param: None,
            })
            .collect();
        for (id, p) in &inner.param_links {
            nodes[*id].param = Some(p.name().to_string());
        }
        TapeSnapshot { nodes }
    }

    /// Horizontal concatenation of matrix vars.
    pub fn concat_cols(&self, parts: &[&Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols of zero vars");
        let values: Vec<Tensor> = parts.iter().map(|p| p.value()).collect();
        let refs: Vec<&Tensor> = values.iter().collect();
        let out = Tensor::concat_cols(&refs).unwrap_or_else(|e| panic!("{e}"));
        let ids: Vec<usize> = parts.iter().map(|p| p.id).collect();
        let widths: Vec<usize> = values.iter().map(|v| v.shape().cols()).collect();
        let rows = values[0].shape().rows();
        self.push(
            Op::ConcatCols,
            ids.clone(),
            out,
            Some(Box::new(move |g: &Tensor| {
                let mut contribs = Vec::with_capacity(ids.len());
                let mut col = 0;
                for (&id, &w) in ids.iter().zip(&widths) {
                    let mut part = vec![0.0f32; rows * w];
                    for r in 0..rows {
                        let src = &g.row(r)[col..col + w];
                        part[r * w..(r + 1) * w].copy_from_slice(src);
                    }
                    contribs.push((id, Tensor::from_vec(Shape::matrix(rows, w), part).unwrap()));
                    col += w;
                }
                contribs
            })),
        )
    }
}

/// A handle to one node of a [`Graph`] tape.
#[derive(Clone)]
pub struct Var {
    graph: Rc<RefCell<GraphInner>>,
    id: usize,
}

impl Var {
    fn graph(&self) -> Graph {
        Graph {
            inner: Rc::clone(&self.graph),
        }
    }

    /// The node's tape id: its index into [`Graph::snapshot`] and the
    /// root id accepted by the `stgnn-analyze` tape validator.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The node's forward value (cheap COW clone).
    pub fn value(&self) -> Tensor {
        self.graph.borrow().nodes[self.id].value.clone()
    }

    /// Runs `f` against a borrow of the node's forward value, avoiding the
    /// tensor + shape clone of [`Var::value`] on hot paths that only need to
    /// read (loss extraction in the training loop, metric reads).
    ///
    /// `f` must not touch the tape (it holds the graph borrow).
    pub fn with_value<R>(&self, f: impl FnOnce(&Tensor) -> R) -> R {
        f(&self.graph.borrow().nodes[self.id].value)
    }

    /// The node's gradient, if `backward` has reached it.
    pub fn grad(&self) -> Option<Tensor> {
        self.graph.borrow().nodes[self.id].grad.clone()
    }

    /// Runs `f` against a borrow of the node's gradient (`None` before the
    /// backward sweep reaches it); the no-clone form of [`Var::grad`].
    ///
    /// `f` must not touch the tape (it holds the graph borrow).
    pub fn with_grad<R>(&self, f: impl FnOnce(Option<&Tensor>) -> R) -> R {
        f(self.graph.borrow().nodes[self.id].grad.as_ref())
    }

    /// The node's shape.
    pub fn shape(&self) -> Shape {
        self.graph.borrow().nodes[self.id].value.shape().clone()
    }

    fn unary(&self, op: Op, out: Tensor, backward: impl Fn(&Tensor) -> Tensor + 'static) -> Var {
        let id = self.id;
        self.graph().push(
            op,
            vec![id],
            out,
            Some(Box::new(move |g| vec![(id, backward(g))])),
        )
    }

    fn binary(
        &self,
        rhs: &Var,
        op: Op,
        out: Tensor,
        backward: impl Fn(&Tensor) -> (Tensor, Tensor) + 'static,
    ) -> Var {
        let (a, b) = (self.id, rhs.id);
        self.graph().push(
            op,
            vec![a, b],
            out,
            Some(Box::new(move |g| {
                let (ga, gb) = backward(g);
                vec![(a, ga), (b, gb)]
            })),
        )
    }

    // ------------------------------------------------------------------
    // Arithmetic
    // ------------------------------------------------------------------

    /// Elementwise sum.
    pub fn add(&self, rhs: &Var) -> Var {
        let out = self
            .value()
            .add(&rhs.value())
            .unwrap_or_else(|e| panic!("{e}"));
        self.binary(rhs, Op::Add, out, |g| (g.clone(), g.clone()))
    }

    /// Elementwise difference.
    pub fn sub(&self, rhs: &Var) -> Var {
        let out = self
            .value()
            .sub(&rhs.value())
            .unwrap_or_else(|e| panic!("{e}"));
        self.binary(rhs, Op::Sub, out, |g| (g.clone(), g.neg()))
    }

    /// Elementwise product.
    pub fn mul(&self, rhs: &Var) -> Var {
        let (av, bv) = (self.value(), rhs.value());
        let out = av.mul(&bv).unwrap_or_else(|e| panic!("{e}"));
        self.binary(rhs, Op::Mul, out, move |g| {
            (g.mul(&bv).unwrap(), g.mul(&av).unwrap())
        })
    }

    /// Elementwise quotient.
    pub fn div(&self, rhs: &Var) -> Var {
        let (av, bv) = (self.value(), rhs.value());
        let out = av.div(&bv).unwrap_or_else(|e| panic!("{e}"));
        self.binary(rhs, Op::Div, out, move |g| {
            let ga = g.div(&bv).unwrap();
            // d(a/b)/db = -a / b²
            let gb = g.mul(&av).unwrap().div(&bv.square()).unwrap().neg();
            (ga, gb)
        })
    }

    /// Adds a scalar.
    pub fn add_scalar(&self, s: f32) -> Var {
        self.unary(Op::AddScalar(s), self.value().add_scalar(s), |g| g.clone())
    }

    /// Scales by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Var {
        self.unary(Op::MulScalar(s), self.value().mul_scalar(s), move |g| {
            g.mul_scalar(s)
        })
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Var {
        self.unary(Op::Neg, self.value().neg(), |g| g.neg())
    }

    // ------------------------------------------------------------------
    // Matrix ops
    // ------------------------------------------------------------------

    /// Matrix product.
    ///
    /// # Panics
    /// Panics on shape mismatch — appropriate when shapes come from
    /// validated configuration. Code whose shapes come from the outside
    /// (e.g. a serving request) must use [`Var::try_matmul`].
    pub fn matmul(&self, rhs: &Var) -> Var {
        self.try_matmul(rhs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Matrix product, surfacing shape mismatches as [`crate::Error`] at
    /// graph-build time instead of panicking mid-tape. The backward pass
    /// stays infallible: once the forward shapes check out, the gradient
    /// shapes are determined.
    pub fn try_matmul(&self, rhs: &Var) -> crate::Result<Var> {
        let (av, bv) = (self.value(), rhs.value());
        let out = av.matmul(&bv)?;
        Ok(self.binary(rhs, Op::Matmul, out, move |g| {
            let ga = g.matmul(&bv.transpose().unwrap()).unwrap();
            let gb = av.transpose().unwrap().matmul(g).unwrap();
            (ga, gb)
        }))
    }

    /// Matrix transpose.
    ///
    /// # Panics
    /// Panics when the value is not rank-2; see [`Var::try_transpose`] for
    /// the fallible form.
    pub fn transpose(&self) -> Var {
        self.try_transpose().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Matrix transpose, surfacing rank errors as [`crate::Error`] at
    /// graph-build time instead of panicking mid-tape.
    pub fn try_transpose(&self) -> crate::Result<Var> {
        let out = self.value().transpose()?;
        Ok(self.unary(Op::Transpose, out, |g| g.transpose().unwrap()))
    }

    /// Reinterprets under a new shape of equal length.
    pub fn reshape(&self, shape: Shape) -> Var {
        let orig = self.shape();
        let out = self
            .value()
            .reshape(shape.clone())
            .unwrap_or_else(|e| panic!("{e}"));
        self.unary(Op::Reshape(shape), out, move |g| {
            g.reshape(orig.clone()).unwrap()
        })
    }

    /// Extracts rows `[start, end)`; gradient zero-pads back.
    pub fn slice_rows(&self, start: usize, end: usize) -> Var {
        let v = self.value();
        let (rows, cols) = v
            .shape()
            .as_matrix("slice_rows")
            .unwrap_or_else(|e| panic!("{e}"));
        let out = v.slice_rows(start, end).unwrap_or_else(|e| panic!("{e}"));
        self.unary(Op::SliceRows { start, end }, out, move |g| {
            let mut full = Tensor::zeros(Shape::matrix(rows, cols));
            let dst = full.data_mut();
            dst[start * cols..end * cols].copy_from_slice(g.data());
            full
        })
    }

    // ------------------------------------------------------------------
    // Activations and pointwise nonlinearities
    // ------------------------------------------------------------------

    /// ReLU.
    pub fn relu(&self) -> Var {
        let x = self.value();
        self.unary(Op::Relu, x.relu(), move |g| {
            g.zip_map(&x, "relu_bw", |gv, xv| if xv > 0.0 { gv } else { 0.0 })
                .unwrap()
        })
    }

    /// ELU with α = 1.
    pub fn elu(&self) -> Var {
        let x = self.value();
        let out = x.elu();
        let out_bw = out.clone();
        self.unary(Op::Elu, out, move |g| {
            // f'(x) = 1 for x > 0, e^x = f(x) + 1 otherwise.
            g.zip_map(&out_bw, "elu_bw", |gv, ov| {
                if ov > 0.0 {
                    gv
                } else {
                    gv * (ov + 1.0)
                }
            })
            .unwrap()
        })
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let out = self.value().sigmoid();
        let s = out.clone();
        self.unary(Op::Sigmoid, out, move |g| {
            g.zip_map(&s, "sigmoid_bw", |gv, sv| gv * sv * (1.0 - sv))
                .unwrap()
        })
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let out = self.value().tanh();
        let t = out.clone();
        self.unary(Op::Tanh, out, move |g| {
            g.zip_map(&t, "tanh_bw", |gv, tv| gv * (1.0 - tv * tv))
                .unwrap()
        })
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Var {
        let out = self.value().exp();
        let e = out.clone();
        self.unary(Op::Exp, out, move |g| g.mul(&e).unwrap())
    }

    /// Elementwise square.
    pub fn square(&self) -> Var {
        let x = self.value();
        self.unary(Op::Square, x.square(), move |g| {
            g.zip_map(&x, "square_bw", |gv, xv| gv * 2.0 * xv).unwrap()
        })
    }

    /// Elementwise absolute value (subgradient 0 at 0).
    pub fn abs(&self) -> Var {
        let x = self.value();
        self.unary(Op::Abs, x.abs(), move |g| {
            g.zip_map(
                &x,
                "abs_bw",
                |gv, xv| if xv == 0.0 { 0.0 } else { gv * xv.signum() },
            )
            .unwrap()
        })
    }

    /// Elementwise square root with a derivative guard at 0.
    pub fn sqrt(&self) -> Var {
        let out = self.value().sqrt();
        let s = out.clone();
        self.unary(Op::Sqrt, out, move |g| {
            g.zip_map(&s, "sqrt_bw", |gv, sv| gv * 0.5 / sv.max(1e-8))
                .unwrap()
        })
    }

    /// Numerically-stable row-wise softmax.
    pub fn softmax_rows(&self) -> Var {
        let out = self
            .value()
            .softmax_rows()
            .unwrap_or_else(|e| panic!("{e}"));
        let s = out.clone();
        self.unary(Op::SoftmaxRows, out, move |g| {
            // dx_j = s_j (g_j − Σ_k g_k s_k), per row.
            let (r, c) = s.shape().as_matrix("softmax_bw").unwrap();
            let mut dx = vec![0.0f32; r * c];
            for i in 0..r {
                let srow = s.row(i);
                let grow = g.row(i);
                let dot: f32 = srow.iter().zip(grow).map(|(&sv, &gv)| sv * gv).sum();
                for j in 0..c {
                    dx[i * c + j] = srow[j] * (grow[j] - dot);
                }
            }
            Tensor::from_vec(Shape::matrix(r, c), dx).unwrap()
        })
    }

    /// Inverted dropout: zeroes elements with probability `p` and scales the
    /// survivors by `1/(1−p)` so the expectation is unchanged. Identity when
    /// `p == 0`. The mask is sampled from `rng` at trace time.
    pub fn dropout(&self, p: f32, rng: &mut impl rand::Rng) -> Var {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout rate must be in [0,1), got {p}"
        );
        if p == 0.0 {
            return self.clone();
        }
        let keep = 1.0 - p;
        let shape = self.shape();
        let mask = Tensor::filled_with(shape, || {
            if rng.gen::<f32>() < keep {
                1.0 / keep
            } else {
                0.0
            }
        });
        let out = self.value().mul(&mask).unwrap();
        let m = mask;
        self.unary(Op::Dropout { rate: p }, out, move |g| g.mul(&m).unwrap())
    }

    // ------------------------------------------------------------------
    // Broadcasts
    // ------------------------------------------------------------------

    /// Adds a `1×c` row vector to every row.
    pub fn add_row_broadcast(&self, row: &Var) -> Var {
        let out = self
            .value()
            .add_row_broadcast(&row.value())
            .unwrap_or_else(|e| panic!("{e}"));
        self.binary(row, Op::AddRowBroadcast, out, |g| {
            (g.clone(), g.sum_rows().unwrap())
        })
    }

    /// Adds an `r×1` column vector to every column.
    pub fn add_col_broadcast(&self, col: &Var) -> Var {
        let out = self
            .value()
            .add_col_broadcast(&col.value())
            .unwrap_or_else(|e| panic!("{e}"));
        self.binary(col, Op::AddColBroadcast, out, |g| {
            (g.clone(), g.sum_cols().unwrap())
        })
    }

    /// Scales row `i` by element `i` of an `r×1` column vector.
    pub fn mul_col_broadcast(&self, col: &Var) -> Var {
        let (av, cv) = (self.value(), col.value());
        let out = av.mul_col_broadcast(&cv).unwrap_or_else(|e| panic!("{e}"));
        self.binary(col, Op::MulColBroadcast, out, move |g| {
            let ga = g.mul_col_broadcast(&cv).unwrap();
            let gc = g.mul(&av).unwrap().sum_cols().unwrap();
            (ga, gc)
        })
    }

    /// Grouped elementwise max-pooling over rows: output row `i` is the
    /// elementwise maximum of the input rows listed in `groups[i]`.
    ///
    /// This is the "max aggregator" of GraphSAGE-style GNNs (the paper's
    /// §VII-G comparison): `groups[i]` lists node `i`'s neighbourhood
    /// (usually including `i` itself). Gradients route to the argmax row per
    /// element, ties resolved to the first listed row.
    ///
    /// # Panics
    /// Panics when the input is not a matrix or a group is empty.
    pub fn rows_max_pool(&self, groups: &[Vec<usize>]) -> Var {
        let v = self.value();
        let (rows, cols) = v
            .shape()
            .as_matrix("rows_max_pool")
            .unwrap_or_else(|e| panic!("{e}"));
        let out_rows = groups.len();
        let mut out = vec![f32::NEG_INFINITY; out_rows * cols];
        let mut argmax = vec![0usize; out_rows * cols];
        for (i, group) in groups.iter().enumerate() {
            assert!(!group.is_empty(), "rows_max_pool: empty group {i}");
            for &r in group {
                assert!(r < rows, "rows_max_pool: row {r} out of {rows}");
                for c in 0..cols {
                    let val = v.data()[r * cols + c];
                    if val > out[i * cols + c] {
                        out[i * cols + c] = val;
                        argmax[i * cols + c] = r;
                    }
                }
            }
        }
        let out_t = Tensor::from_vec(Shape::matrix(out_rows, cols), out).unwrap();
        let op = Op::RowsMaxPool {
            groups: groups.to_vec(),
        };
        self.unary(op, out_t, move |g| {
            let mut dx = Tensor::zeros(Shape::matrix(rows, cols));
            let buf = dx.data_mut();
            for i in 0..out_rows {
                for c in 0..cols {
                    buf[argmax[i * cols + c] * cols + c] += g.data()[i * cols + c];
                }
            }
            dx
        })
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements (scalar output).
    pub fn sum_all(&self) -> Var {
        let shape = self.shape();
        self.unary(Op::SumAll, self.value().sum_all(), move |g| {
            Tensor::full(shape.clone(), g.scalar())
        })
    }

    /// Mean of all elements (scalar output).
    pub fn mean_all(&self) -> Var {
        let shape = self.shape();
        let inv = 1.0 / shape.len() as f32;
        self.unary(Op::MeanAll, self.value().mean_all(), move |g| {
            Tensor::full(shape.clone(), g.scalar() * inv)
        })
    }

    /// Per-row sums, `r×c → r×1`.
    pub fn sum_cols(&self) -> Var {
        let v = self.value();
        let (r, c) = v
            .shape()
            .as_matrix("sum_cols")
            .unwrap_or_else(|e| panic!("{e}"));
        self.unary(Op::SumCols, v.sum_cols().unwrap(), move |g| {
            let mut out = vec![0.0f32; r * c];
            for i in 0..r {
                let gv = g.data()[i];
                out[i * c..(i + 1) * c].fill(gv);
            }
            Tensor::from_vec(Shape::matrix(r, c), out).unwrap()
        })
    }

    /// Per-column sums, `r×c → 1×c`.
    pub fn sum_rows(&self) -> Var {
        let v = self.value();
        let (r, c) = v
            .shape()
            .as_matrix("sum_rows")
            .unwrap_or_else(|e| panic!("{e}"));
        self.unary(Op::SumRows, v.sum_rows().unwrap(), move |g| {
            let mut out = vec![0.0f32; r * c];
            for i in 0..r {
                out[i * c..(i + 1) * c].copy_from_slice(g.data());
            }
            Tensor::from_vec(Shape::matrix(r, c), out).unwrap()
        })
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Runs the reverse sweep from this node, accumulating gradients into
    /// every ancestor and depositing them into linked [`Param`]s.
    ///
    /// Each tape supports one backward pass: backward closures are consumed
    /// as the sweep visits them (they hold saved tensors that are then
    /// freed). Build a fresh graph per training step.
    pub fn backward(&self) {
        let mut inner = self.graph.borrow_mut();
        let seed = Tensor::ones(inner.nodes[self.id].value.shape().clone());
        accumulate(&mut inner.nodes[self.id].grad, seed);
        for id in (0..=self.id).rev() {
            let Some(grad) = inner.nodes[id].grad.clone() else {
                continue;
            };
            let Some(bw) = inner.nodes[id].backward.take() else {
                continue;
            };
            for (pid, g) in bw(&grad) {
                debug_assert!(pid < id, "tape order violated: node {id} feeds {pid}");
                accumulate(&mut inner.nodes[pid].grad, g);
            }
        }
        // Deposit leaf gradients into parameter cells.
        for (node_id, param) in &inner.param_links {
            if let Some(g) = &inner.nodes[*node_id].grad {
                param.accumulate_grad(g);
            }
        }
    }
}

fn accumulate(slot: &mut Option<Tensor>, g: Tensor) {
    match slot {
        Some(cur) => *cur = cur.add(&g).expect("gradient accumulation shape mismatch"),
        None => *slot = Some(g),
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var(id={}, value={:?})", self.id, self.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(rows: &[&[f32]]) -> Tensor {
        Tensor::from_rows(rows)
    }

    /// Central finite-difference gradient of `f` w.r.t. `x`, evaluated at `x`.
    fn numeric_grad(x: &Tensor, f: impl Fn(&Tensor) -> f32) -> Tensor {
        let eps = 1e-2f32; // f32 precision: large eps + central differences
        let mut grad = Tensor::zeros(x.shape().clone());
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            grad.data_mut()[i] = (f(&xp) - f(&xm)) / (2.0 * eps);
        }
        grad
    }

    /// Asserts autodiff and finite-difference gradients agree for a scalar
    /// function built on the tape from a single input matrix.
    fn check_grad(x0: Tensor, build: impl Fn(&Graph, &Var) -> Var, tol: f32) {
        let g = Graph::new();
        let p = Param::new("x", x0.clone());
        let x = g.param(&p);
        let y = build(&g, &x);
        assert_eq!(y.value().len(), 1, "check_grad requires a scalar output");
        y.backward();
        let auto = p.grad();
        let num = numeric_grad(&x0, |xv| {
            let g2 = Graph::new();
            let x2 = g2.leaf(xv.clone());
            build(&g2, &x2).value().scalar()
        });
        for i in 0..auto.len() {
            let (a, n) = (auto.data()[i], num.data()[i]);
            assert!(
                (a - n).abs() <= tol * (1.0 + n.abs()),
                "grad mismatch at {i}: autodiff {a} vs numeric {n}"
            );
        }
    }

    #[test]
    fn forward_values_match_tensor_ops() {
        let g = Graph::new();
        let a = g.leaf(t(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = g.leaf(t(&[&[5.0, 6.0], &[7.0, 8.0]]));
        assert_eq!(a.add(&b).value().data(), &[6.0, 8.0, 10.0, 12.0]);
        assert_eq!(a.matmul(&b).value().data(), &[19.0, 22.0, 43.0, 50.0]);
        assert_eq!(a.sum_all().value().scalar(), 10.0);
        assert_eq!(a.transpose().value().data(), &[1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn simple_chain_backward() {
        // y = sum(a ⊙ a) → dy/da = 2a
        let g = Graph::new();
        let p = Param::new("a", t(&[&[1.0, -2.0], &[3.0, 0.5]]));
        let a = g.param(&p);
        a.mul(&a).sum_all().backward();
        assert!(p.grad().approx_eq(&t(&[&[2.0, -4.0], &[6.0, 1.0]]), 1e-6));
    }

    #[test]
    fn grad_accumulates_across_multiple_uses() {
        // y = sum(a) + sum(a) → dy/da = 2
        let g = Graph::new();
        let p = Param::new("a", t(&[&[1.0, 2.0]]));
        let a = g.param(&p);
        a.sum_all().add(&a.sum_all()).backward();
        assert!(p.grad().approx_eq(&t(&[&[2.0, 2.0]]), 1e-6));
    }

    #[test]
    fn matmul_gradcheck() {
        let b = t(&[&[0.5, -1.0, 2.0], &[1.5, 0.3, -0.7]]);
        check_grad(
            t(&[&[1.0, 2.0], &[3.0, -4.0], &[0.1, 0.2]]),
            move |g, x| {
                let bv = g.leaf(b.clone());
                x.matmul(&bv).square().sum_all()
            },
            2e-2,
        );
    }

    #[test]
    fn activation_gradchecks() {
        let x0 = t(&[&[0.5, -1.3], &[2.1, -0.4]]);
        check_grad(x0.clone(), |_, x| x.relu().sum_all(), 1e-2);
        check_grad(x0.clone(), |_, x| x.elu().square().sum_all(), 2e-2);
        check_grad(x0.clone(), |_, x| x.sigmoid().sum_all(), 1e-2);
        check_grad(x0.clone(), |_, x| x.tanh().sum_all(), 1e-2);
        check_grad(x0.clone(), |_, x| x.exp().sum_all(), 2e-2);
        check_grad(x0, |_, x| x.square().mean_all(), 1e-2);
    }

    #[test]
    fn softmax_gradcheck() {
        check_grad(
            t(&[&[0.2, -0.8, 1.4], &[2.0, 0.0, -1.0]]),
            |g, x| {
                // weight rows so the gradient is non-trivial
                let w = g.leaf(t(&[&[1.0, -2.0, 0.5], &[0.3, 0.9, -1.1]]));
                x.softmax_rows().mul(&w).sum_all()
            },
            2e-2,
        );
    }

    #[test]
    fn div_and_broadcast_gradchecks() {
        let x0 = t(&[&[1.0, 2.0], &[3.0, 4.0]]);
        check_grad(
            x0.clone(),
            |g, x| {
                let d = g.leaf(t(&[&[2.0, 4.0], &[5.0, 8.0]]));
                x.div(&d).sum_all()
            },
            1e-2,
        );
        // gradient w.r.t. the divisor
        check_grad(
            x0.clone(),
            |g, x| {
                let n = g.leaf(t(&[&[2.0, 4.0], &[5.0, 8.0]]));
                n.div(&x.add_scalar(5.0)).sum_all()
            },
            1e-2,
        );
        check_grad(
            x0.clone(),
            |g, x| {
                let row = g.leaf(t(&[&[1.0, -1.0]]));
                x.add_row_broadcast(&row).square().sum_all()
            },
            2e-2,
        );
        check_grad(
            x0.clone(),
            |g, x| {
                let col = g.leaf(t(&[&[2.0], &[-1.0]]));
                x.mul_col_broadcast(&col).square().sum_all()
            },
            2e-2,
        );
        // gradient w.r.t. the broadcast operand itself
        check_grad(
            t(&[&[2.0], &[-1.0]]),
            move |g, c| {
                let a = g.leaf(t(&[&[1.0, 2.0], &[3.0, 4.0]]));
                a.mul_col_broadcast(c).square().sum_all()
            },
            2e-2,
        );
    }

    #[test]
    fn reduction_gradchecks() {
        let x0 = t(&[&[1.0, -2.0, 0.5], &[3.0, 4.0, -1.5]]);
        check_grad(
            x0.clone(),
            |g, x| {
                let w = g.leaf(t(&[&[1.0], &[2.0]]));
                x.sum_cols().mul(&w).sum_all()
            },
            1e-2,
        );
        check_grad(
            x0.clone(),
            |g, x| {
                let w = g.leaf(t(&[&[1.0, -1.0, 2.0]]));
                x.sum_rows().mul(&w).sum_all()
            },
            1e-2,
        );
        check_grad(x0, |_, x| x.mean_all(), 1e-2);
    }

    #[test]
    fn concat_and_slice_gradchecks() {
        let x0 = t(&[&[1.0, 2.0], &[3.0, 4.0]]);
        check_grad(
            x0.clone(),
            |g, x| {
                let other = g.leaf(t(&[&[5.0], &[6.0]]));
                let cat = g.concat_cols(&[x, &other]);
                cat.square().sum_all()
            },
            2e-2,
        );
        check_grad(
            x0.clone(),
            |_, x| x.slice_rows(1, 2).square().sum_all(),
            2e-2,
        );
        check_grad(x0, |_, x| x.transpose().square().sum_all(), 2e-2);
    }

    #[test]
    fn rows_max_pool_forward_and_backward() {
        let g = Graph::new();
        let p = Param::new("x", t(&[&[1.0, 5.0], &[3.0, 2.0], &[0.0, 9.0]]));
        let x = g.param(&p);
        // node 0 pools {0,1}, node 1 pools {1,2}
        let y = x.rows_max_pool(&[vec![0, 1], vec![1, 2]]);
        assert_eq!(y.value().data(), &[3.0, 5.0, 3.0, 9.0]);
        y.sum_all().backward();
        // grads route to argmax entries; row1 col0 wins twice.
        assert!(p
            .grad()
            .approx_eq(&t(&[&[0.0, 1.0], &[2.0, 0.0], &[0.0, 1.0]]), 1e-6));
    }

    #[test]
    fn rows_max_pool_gradcheck() {
        check_grad(
            t(&[&[1.0, 5.0], &[3.0, 2.0], &[0.5, 9.0]]),
            |_, x| {
                x.rows_max_pool(&[vec![0, 1], vec![1, 2], vec![0, 2]])
                    .square()
                    .sum_all()
            },
            2e-2,
        );
    }

    #[test]
    fn sqrt_and_abs_gradchecks() {
        check_grad(
            t(&[&[4.0, 9.0], &[1.0, 16.0]]),
            |_, x| x.sqrt().sum_all(),
            1e-2,
        );
        check_grad(
            t(&[&[2.0, -3.0], &[1.0, -0.5]]),
            |_, x| x.abs().sum_all(),
            1e-2,
        );
    }

    #[test]
    fn reshape_gradcheck() {
        check_grad(
            t(&[&[1.0, 2.0, 3.0, 4.0]]),
            |g, x| {
                let w = g.leaf(t(&[&[1.0, -1.0], &[2.0, 0.5]]));
                x.reshape(Shape::matrix(2, 2)).mul(&w).sum_all()
            },
            1e-2,
        );
    }

    #[test]
    fn dropout_zero_rate_is_identity() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = Graph::new();
        let x = g.leaf(t(&[&[1.0, 2.0]]));
        let y = x.dropout(0.0, &mut rng);
        assert_eq!(y.value().data(), &[1.0, 2.0]);
    }

    #[test]
    fn dropout_scales_survivors_and_routes_grads() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = Graph::new();
        let p = Param::new("x", Tensor::ones(Shape::matrix(4, 4)));
        let x = g.param(&p);
        let y = x.dropout(0.5, &mut rng);
        // survivors are exactly 2.0, dropped exactly 0.0
        assert!(y.value().data().iter().all(|&v| v == 0.0 || v == 2.0));
        y.sum_all().backward();
        // gradient equals the mask
        assert!(p.grad().approx_eq(&y.value(), 1e-6));
    }

    #[test]
    fn param_writeback_and_zero() {
        let p = Param::new("w", t(&[&[1.0, 2.0]]));
        let g = Graph::new();
        let w = g.param(&p);
        w.mul_scalar(3.0).sum_all().backward();
        assert!(p.grad().approx_eq(&t(&[&[3.0, 3.0]]), 1e-6));
        p.zero_grad();
        assert!(p.grad().approx_eq(&t(&[&[0.0, 0.0]]), 0.0));
    }

    #[test]
    fn paramset_bookkeeping() {
        let mut ps = ParamSet::new();
        let a = ps.add("a", Tensor::zeros(Shape::matrix(2, 3)));
        ps.add("b", Tensor::zeros(Shape::vector(4)));
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.num_elements(), 10);
        assert_eq!(a.name(), "a");
        assert!(!ps.is_empty());

        let mut other = ParamSet::new();
        other.extend(&ps);
        assert_eq!(other.len(), 2);
    }

    #[test]
    fn grad_norm_matches_manual() {
        let mut ps = ParamSet::new();
        let p = ps.add("p", t(&[&[1.0, 1.0]]));
        p.accumulate_grad(&t(&[&[3.0, 4.0]]));
        assert!((ps.grad_norm() - 5.0).abs() < 1e-6);
    }

    /// Regression: shape mismatches used to be unreachable except as a
    /// `panic!` inside the tape; the `try_` forms must surface them as
    /// errors at graph-build time and leave the graph usable.
    #[test]
    fn try_matmul_and_try_transpose_surface_shape_errors() {
        let g = Graph::new();
        let a = g.leaf(t(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let bad = g.leaf(t(&[&[1.0, 2.0, 3.0]])); // 1×3: inner dims clash
        let err = a.try_matmul(&bad).unwrap_err();
        assert!(err.to_string().contains("matmul"), "{err}");

        let scalar = g.leaf(Tensor::from_scalar(1.0));
        assert!(scalar.try_transpose().is_err());

        // The same graph keeps working after a failed build step, and the
        // fallible path is gradient-equivalent to the panicking one.
        let b = g.leaf(t(&[&[1.0], &[1.0]]));
        let y = a.try_matmul(&b).unwrap().sum_all();
        assert_eq!(y.value().scalar(), 10.0);
        y.backward();

        let ok = a.try_transpose().unwrap();
        assert_eq!(ok.value().data(), &[1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn two_layer_network_gradcheck() {
        // A composite block close to the real model: relu(x·W1)·W2 softmaxed.
        let w1 = t(&[&[0.3, -0.2, 0.5], &[0.1, 0.4, -0.6]]);
        let w2 = t(&[&[0.7, -0.3], &[0.2, 0.9], &[-0.5, 0.1]]);
        check_grad(
            t(&[&[1.0, -1.5], &[0.5, 2.0]]),
            move |g, x| {
                let w1v = g.leaf(w1.clone());
                let w2v = g.leaf(w2.clone());
                x.matmul(&w1v)
                    .relu()
                    .matmul(&w2v)
                    .softmax_rows()
                    .square()
                    .sum_all()
            },
            3e-2,
        );
    }
}
