// lint: allow-file(L004): chunk bounds derive from slice lengths.
//! Parallel kernel execution: a persistent, work-chunking thread pool.
//!
//! Every hot kernel in this crate — `matmul`, `softmax_rows`, `transpose`,
//! the elementwise maps and the broadcast helpers — reduces to a loop over
//! independent output rows (or independent flat elements). This module runs
//! those loops across a hand-rolled `std::thread` pool:
//!
//! * **Persistent** — worker threads are spawned once (lazily, on the first
//!   parallel dispatch) and live for the rest of the process, blocking on a
//!   shared job queue. No per-call spawn cost.
//! * **Scoped** — [`for_each_chunk`] dispatches closures that borrow the
//!   caller's stack (input slices, the output buffer) and does not return
//!   until every chunk has finished, so the borrows never outlive the call.
//!   A completion latch enforces this even when a chunk panics.
//! * **Deterministic** — chunks are contiguous index ranges and every kernel
//!   routed through this module computes each output row *independently*
//!   (accumulation happens per-row, inside one chunk, in the same order as
//!   the serial loop). Results are therefore bit-for-bit identical for any
//!   thread count, including 1.
//!
//! Sizing: `STGNN_THREADS` (an integer ≥ 1) overrides
//! `std::thread::available_parallelism()`; `STGNN_THREADS=1` — or a
//! single-core machine — short-circuits every dispatch to a plain inline
//! loop with zero synchronisation. Benchmarks and tests can additionally
//! force a thread count at runtime with [`set_thread_override`], which is
//! safe to flip concurrently precisely because results never depend on it.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};
use std::thread;

/// Upper bound on worker threads, a guard against absurd `STGNN_THREADS`
/// values and runaway overrides.
const MAX_THREADS: usize = 64;

/// A queued unit of work. Jobs borrow the dispatching caller's stack; the
/// completion latch in [`for_each_chunk`] guarantees they finish before the
/// borrows go out of scope (see the `transmute` there).
type Job = Box<dyn FnOnce() + Send>;

struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
}

struct Pool {
    queue: &'static Queue,
    /// Worker threads spawned so far (grows on demand, never shrinks).
    spawned: Mutex<usize>,
}

/// Ignores lock poisoning: kernel bodies are caught with `catch_unwind`, so
/// a poisoned pool lock only means some *other* test thread panicked while
/// holding it, and the protected data (a job deque / a counter) stays valid.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        queue: Box::leak(Box::new(Queue {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        })),
        spawned: Mutex::new(0),
    })
}

/// `0` = no override; otherwise the forced thread count (benches/tests).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while a pool worker (or a dispatching thread) is inside a kernel
    /// body. Nested dispatches run inline instead of re-entering the queue,
    /// which would risk all workers blocking on latches at once.
    static IN_PARALLEL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// The configured thread count: `STGNN_THREADS` if set and ≥ 1, else
/// `available_parallelism()`, else 1. Read once per process.
pub fn configured_threads() -> usize {
    static CONFIGURED: OnceLock<usize> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        std::env::var("STGNN_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| thread::available_parallelism().map_or(1, |n| n.get()))
            .min(MAX_THREADS)
    })
}

/// Forces (`Some(n)`) or restores (`None`) the dispatch width at runtime.
///
/// Exists for benchmarks and determinism tests that compare thread counts
/// within one process. Concurrent flips are harmless by design: kernels are
/// bit-for-bit deterministic in the thread count.
pub fn set_thread_override(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.map_or(0, |n| n.clamp(1, MAX_THREADS)), Ordering::Relaxed);
}

/// The thread count the next dispatch will use.
pub fn effective_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => configured_threads(),
        n => n,
    }
}

/// Eagerly spins up the pool for the configured thread count and returns it.
///
/// Kernels initialise the pool lazily on first use; call this at subsystem
/// start (the trainer's epoch loop, a serving worker pool) to keep the
/// one-off spawn cost out of the first timed batch.
pub fn init() -> usize {
    let n = effective_threads();
    if n > 1 {
        ensure_workers(n - 1) + 1
    } else {
        1
    }
}

/// Makes sure at least `n` workers exist (capped at `MAX_THREADS - 1`) and
/// returns the number actually running. Spawn failure (thread-resource
/// exhaustion) stops growing the pool and reports the shortfall instead of
/// panicking — an unwind here would hold-and-abandon the `spawned` guard,
/// and dispatchers can degrade safely because results are bit-identical at
/// any chunk count (the module's determinism contract).
fn ensure_workers(n: usize) -> usize {
    let p = pool();
    let n = n.min(MAX_THREADS - 1);
    let mut spawned = lock(&p.spawned);
    while *spawned < n {
        let queue: &'static Queue = p.queue;
        let res = thread::Builder::new()
            .name(format!("stgnn-par-{}", *spawned))
            .spawn(move || worker_loop(queue));
        if res.is_err() {
            break;
        }
        *spawned += 1;
    }
    *spawned
}

fn worker_loop(queue: &'static Queue) {
    loop {
        let job = {
            let mut jobs = lock(&queue.jobs);
            loop {
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                jobs = queue
                    .available
                    .wait(jobs)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        IN_PARALLEL.with(|f| f.set(true));
        job();
        IN_PARALLEL.with(|f| f.set(false));
    }
}

/// Completion latch + first-panic capture for one dispatch.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Latch {
    fn arrive(&self, payload: Option<Box<dyn std::any::Any + Send>>) {
        if let Some(p) = payload {
            lock(&self.panic).get_or_insert(p);
        }
        *lock(&self.remaining) -= 1;
        self.done.notify_all();
    }

    fn wait(&self) {
        let mut remaining = lock(&self.remaining);
        while *remaining > 0 {
            remaining = self.done.wait(remaining).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Runs `body` over `0..items` split into contiguous chunks executed in
/// parallel, returning once every chunk is done.
///
/// `grain` is the minimum number of items worth one dispatch: the call runs
/// inline (serial, zero overhead beyond one branch) when `items < 2·grain`,
/// when the effective thread count is 1, or when already inside a parallel
/// body. Panics from `body` are re-raised on the calling thread after all
/// chunks finish.
///
/// Determinism contract: `body` must compute each item independently of the
/// chunk boundaries (true for every row-parallel kernel in this crate), so
/// the result is identical for any thread count.
pub fn for_each_chunk(items: usize, grain: usize, body: impl Fn(Range<usize>) + Sync) {
    if items == 0 {
        return;
    }
    let threads = effective_threads();
    let grain = grain.max(1);
    let chunks = threads.min(items.div_ceil(grain));
    if chunks <= 1 || IN_PARALLEL.with(|f| f.get()) {
        body(0..items);
        return;
    }
    // Degraded pool (worker spawn failed): clamp the dispatch to the
    // workers that exist plus this thread. Chunk boundaries change but
    // results do not — see the determinism contract above.
    let chunks = chunks.min(ensure_workers(chunks - 1) + 1);
    if chunks <= 1 {
        body(0..items);
        return;
    }

    let latch = Latch {
        remaining: Mutex::new(chunks),
        done: Condvar::new(),
        panic: Mutex::new(None),
    };
    let latch_ref = &latch;
    let body_ref: &(dyn Fn(Range<usize>) + Sync) = &body;

    {
        // Push chunks 1..k to the queue, run chunk 0 on this thread. The
        // jobs borrow `latch` and `body`; transmuting them to 'static is
        // sound because `latch.wait()` below does not return until every
        // job has run to completion (arrive() fires even on panic).
        let mut jobs = lock(&pool().queue.jobs);
        for c in 1..chunks {
            let range = chunk_range(items, chunks, c);
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body_ref(range)));
                latch_ref.arrive(result.err());
            });
            let job: Job = unsafe { std::mem::transmute(job) };
            jobs.push_back(job);
        }
        drop(jobs);
        pool().queue.available.notify_all();
    }

    IN_PARALLEL.with(|f| f.set(true));
    let own = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        body_ref(chunk_range(items, chunks, 0))
    }));
    IN_PARALLEL.with(|f| f.set(false));
    latch.arrive(own.err());
    latch.wait();

    let payload = lock(&latch.panic).take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
}

/// The `c`-th of `chunks` balanced contiguous ranges covering `0..items`.
fn chunk_range(items: usize, chunks: usize, c: usize) -> Range<usize> {
    let base = items / chunks;
    let rem = items % chunks;
    let start = c * base + c.min(rem);
    let len = base + usize::from(c < rem);
    start..start + len
}

/// Raw-pointer courier for handing each chunk its disjoint `&mut` window of
/// one output buffer. Soundness: [`for_each_row_chunk_mut`] hands every
/// chunk a non-overlapping row range, and the latch keeps the buffer borrow
/// alive until all chunks finish.
#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Parallel loop over the rows of a row-major `rows×cols` output buffer.
/// `body(first_row, window)` receives the starting row index of its chunk
/// and the mutable window covering exactly that chunk's rows.
///
/// `grain` is in rows; see [`for_each_chunk`] for the serial fallbacks and
/// the determinism contract.
pub fn for_each_row_chunk_mut(
    out: &mut [f32],
    cols: usize,
    grain: usize,
    body: impl Fn(usize, &mut [f32]) + Sync,
) {
    if cols == 0 {
        return;
    }
    let rows = out.len() / cols;
    debug_assert_eq!(out.len(), rows * cols, "buffer is not rows×cols");
    let base = SendPtr(out.as_mut_ptr());
    for_each_chunk(rows, grain, move |range| {
        // Rebind the whole wrapper: 2021 closures would otherwise capture
        // the bare `base.0` field, which is not Sync.
        let base = base;
        let window = unsafe {
            std::slice::from_raw_parts_mut(base.0.add(range.start * cols), range.len() * cols)
        };
        body(range.start, window);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn chunk_ranges_partition_exactly() {
        for items in [0usize, 1, 5, 7, 64, 1001] {
            for chunks in 1..=8usize {
                let mut covered = vec![false; items];
                for c in 0..chunks {
                    for i in chunk_range(items, chunks, c) {
                        assert!(!covered[i], "index {i} covered twice");
                        covered[i] = true;
                    }
                }
                assert!(
                    covered.iter().all(|&c| c),
                    "{items} items / {chunks} chunks"
                );
            }
        }
    }

    #[test]
    fn for_each_chunk_visits_every_item_once() {
        set_thread_override(Some(4));
        let hits: Vec<AtomicU32> = (0..257).map(|_| AtomicU32::new(0)).collect();
        for_each_chunk(hits.len(), 1, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        set_thread_override(None);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn row_chunks_write_disjoint_windows() {
        set_thread_override(Some(3));
        let cols = 7;
        let mut out = vec![0.0f32; 50 * cols];
        for_each_row_chunk_mut(&mut out, cols, 1, |first_row, window| {
            for (r, row) in window.chunks_mut(cols).enumerate() {
                row.fill((first_row + r) as f32);
            }
        });
        set_thread_override(None);
        for r in 0..50 {
            assert!(out[r * cols..(r + 1) * cols].iter().all(|&v| v == r as f32));
        }
    }

    #[test]
    fn small_work_runs_inline() {
        // grain 100 over 10 items must not dispatch: body sees one range.
        set_thread_override(Some(8));
        let calls = AtomicU32::new(0);
        for_each_chunk(10, 100, |range| {
            assert_eq!(range, 0..10);
            calls.fetch_add(1, Ordering::Relaxed);
        });
        set_thread_override(None);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        set_thread_override(Some(2));
        let result = std::panic::catch_unwind(|| {
            for_each_chunk(64, 1, |range| {
                if range.contains(&63) {
                    panic!("boom in chunk");
                }
            });
        });
        set_thread_override(None);
        assert!(result.is_err(), "chunk panic must reach the dispatcher");
        // The pool must still work after a panic.
        let hits = AtomicU32::new(0);
        set_thread_override(Some(2));
        for_each_chunk(64, 1, |range| {
            hits.fetch_add(range.len() as u32, Ordering::Relaxed);
        });
        set_thread_override(None);
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn override_is_clamped_and_restored() {
        set_thread_override(Some(10_000));
        assert_eq!(effective_threads(), MAX_THREADS);
        set_thread_override(Some(1));
        assert_eq!(effective_threads(), 1);
        set_thread_override(None);
        assert_eq!(effective_threads(), configured_threads());
    }

    #[test]
    fn init_reports_effective_threads() {
        assert_eq!(init(), effective_threads());
    }
}
