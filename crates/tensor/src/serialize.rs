//! Parameter persistence: a small, versioned, human-readable text format.
//!
//! A trained model's [`ParamSet`] round-trips through any `Write`/`Read`
//! pair (files, buffers). The format is line-oriented:
//!
//! ```text
//! stgnn-params v1
//! <param count>
//! <name> <dim0> <dim1> …
//! <v0> <v1> … (row-major, one line)
//! …
//! ```
//!
//! Loading matches parameters **by name** against an already-constructed
//! `ParamSet` (build the model with the same configuration first, then load
//! weights into it), and fails loudly on unknown names, missing parameters
//! or shape mismatches rather than silently mis-assigning weights.
//!
//! Non-finite values (NaN/±Inf) are **rejected at load time** by policy: a
//! checkpoint is only ever loaded to run inference or resume training, and
//! in both cases a non-finite weight is unrecoverable corruption that would
//! otherwise surface as silently-poisoned predictions far from its cause.

use crate::autograd::ParamSet;
use crate::shape::Shape;
use crate::tensor::Tensor;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

const MAGIC: &str = "stgnn-params v1";

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes every parameter of `params` to `writer`.
pub fn save_params<W: Write>(params: &ParamSet, writer: W) -> io::Result<()> {
    stgnn_faults::failpoint!("serialize::write", io);
    let mut w = BufWriter::new(writer);
    writeln!(w, "{MAGIC}")?;
    writeln!(w, "{}", params.len())?;
    for p in params.params() {
        let value = p.value();
        write!(w, "{}", p.name())?;
        for d in value.shape().dims() {
            write!(w, " {d}")?;
        }
        writeln!(w)?;
        let mut first = true;
        for v in value.data() {
            if !first {
                write!(w, " ")?;
            }
            // `{:e}` keeps full f32 precision and round-trips exactly.
            write!(w, "{v:e}")?;
            first = false;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Loads parameters from `reader` into `params`, matching by name.
///
/// Every stored parameter must exist in `params` with the same shape, and
/// every parameter of `params` must be present in the stream.
pub fn load_params<R: Read>(params: &ParamSet, reader: R) -> io::Result<()> {
    stgnn_faults::failpoint!("serialize::read", io);
    let mut lines = BufReader::new(reader).lines();
    let mut next = || {
        lines
            .next()
            .ok_or_else(|| bad("unexpected end of stream"))?
    };
    if next()? != MAGIC {
        return Err(bad("not a stgnn-params v1 stream"));
    }
    let count: usize = next()?
        .trim()
        .parse()
        .map_err(|_| bad("bad parameter count"))?;

    let by_name: HashMap<String, _> = params
        .params()
        .iter()
        .map(|p| (p.name().to_string(), p.clone()))
        .collect();
    if count != by_name.len() {
        return Err(bad(format!(
            "stream has {count} params, model has {}",
            by_name.len()
        )));
    }

    let mut seen = 0usize;
    for _ in 0..count {
        let header = next()?;
        let mut fields = header.split_whitespace();
        let name = fields
            .next()
            .ok_or_else(|| bad("empty parameter header"))?
            .to_string();
        let dims: Vec<usize> = fields
            .map(|f| {
                f.parse()
                    .map_err(|_| bad(format!("bad dimension in {name}")))
            })
            .collect::<io::Result<_>>()?;
        let shape = Shape::from_dims(&dims);

        let param = by_name
            .get(&name)
            .ok_or_else(|| bad(format!("stream parameter {name} not in the model")))?;
        if param.value().shape() != &shape {
            return Err(bad(format!(
                "shape mismatch for {name}: stream {shape} vs model {}",
                param.value().shape()
            )));
        }

        let values_line = next()?;
        let data: Vec<f32> = values_line
            .split_whitespace()
            .map(|f| {
                let v: f32 = f.parse().map_err(|_| bad(format!("bad value in {name}")))?;
                // A NaN/Inf weight would silently poison every prediction a
                // serving model makes; refuse the checkpoint outright.
                if !v.is_finite() {
                    return Err(bad(format!("non-finite value {v} in {name}")));
                }
                Ok(v)
            })
            .collect::<io::Result<_>>()?;
        if data.len() != shape.len() {
            return Err(bad(format!(
                "{name}: expected {} values, got {}",
                shape.len(),
                data.len()
            )));
        }
        param.set_value(Tensor::from_vec(shape, data).map_err(|e| bad(e.to_string()))?);
        seen += 1;
    }
    if seen != by_name.len() {
        return Err(bad("stream ended before every model parameter was loaded"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::xavier_uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params(seed: u64) -> ParamSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamSet::new();
        ps.add("layer.w", xavier_uniform(&mut rng, 3, 4));
        ps.add("layer.b", Tensor::from_rows(&[&[0.5, -1.25e-7, 3.0]]));
        ps
    }

    #[test]
    fn round_trip_is_exact() {
        let original = params(1);
        let mut buf = Vec::new();
        save_params(&original, &mut buf).unwrap();

        let target = params(2); // different values, same structure
        assert!(!target.params()[0]
            .value()
            .approx_eq(&original.params()[0].value(), 1e-9));
        load_params(&target, buf.as_slice()).unwrap();
        for (a, b) in original.params().iter().zip(target.params()) {
            assert!(
                a.value().approx_eq(&b.value(), 0.0),
                "param {} not exact",
                a.name()
            );
        }
    }

    #[test]
    fn rejects_wrong_magic_and_truncation() {
        let ps = params(1);
        assert!(load_params(&ps, "garbage\n".as_bytes()).is_err());
        assert!(load_params(&ps, "".as_bytes()).is_err());
        // A v2 header must not load into a v1 reader.
        assert!(load_params(&ps, "stgnn-params v2\n2\n".as_bytes()).is_err());

        let mut buf = Vec::new();
        save_params(&ps, &mut buf).unwrap();
        let truncated = &buf[..buf.len() / 2];
        assert!(load_params(&params(1), truncated).is_err());
    }

    #[test]
    fn truncation_at_every_line_boundary_is_rejected() {
        let ps = params(1);
        let mut buf = Vec::new();
        save_params(&ps, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Dropping any suffix of lines (except dropping nothing) must fail:
        // the stream promises `count` params and delivers fewer.
        for keep in 0..lines.len() {
            let partial = lines[..keep].join("\n");
            assert!(
                load_params(&params(1), partial.as_bytes()).is_err(),
                "stream truncated to {keep} lines was accepted"
            );
        }
    }

    #[test]
    fn truncation_inside_a_value_row_is_rejected() {
        let ps = params(1);
        let mut buf = Vec::new();
        save_params(&ps, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Cut mid-way through the first value line: the row parses but has
        // too few values for the declared shape.
        let header_end = text.find('\n').unwrap();
        let count_end = header_end + 1 + text[header_end + 1..].find('\n').unwrap();
        let param_header_end = count_end + 1 + text[count_end + 1..].find('\n').unwrap();
        let cut = param_header_end + 20;
        assert!(load_params(&params(1), &text.as_bytes()[..cut]).is_err());
    }

    #[test]
    fn rejects_non_finite_values() {
        for poison in ["NaN", "inf", "-inf"] {
            let stream = format!(
                "stgnn-params v1\n2\nlayer.w 3 4\n{}\nlayer.b 1 3\n0 0 0\n",
                [poison; 12].join(" ")
            );
            let err = load_params(&params(1), stream.as_bytes()).unwrap_err();
            assert!(
                err.to_string().contains("non-finite"),
                "{poison}: unexpected error {err}"
            );
        }
    }

    #[test]
    fn rejects_garbage_values_and_bad_counts() {
        // Unparseable value token.
        let stream = "stgnn-params v1\n1\nlayer.b 1 3\n0 huh 0\n";
        let mut one = ParamSet::new();
        one.add("layer.b", Tensor::zeros(Shape::matrix(1, 3)));
        assert!(load_params(&one, stream.as_bytes()).is_err());
        // Wrong number of values for the declared shape.
        let short = "stgnn-params v1\n1\nlayer.b 1 3\n0 0\n";
        assert!(load_params(&one, short.as_bytes()).is_err());
        // Unparseable parameter count.
        assert!(load_params(&one, "stgnn-params v1\nmany\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_unknown_and_missing_params() {
        let mut buf = Vec::new();
        save_params(&params(1), &mut buf).unwrap();

        // A model with a different parameter name must refuse the stream.
        let mut other = ParamSet::new();
        other.add("different.w", Tensor::zeros(Shape::matrix(3, 4)));
        other.add("layer.b", Tensor::zeros(Shape::matrix(1, 3)));
        assert!(load_params(&other, buf.as_slice()).is_err());

        // A model with fewer parameters must refuse too.
        let mut fewer = ParamSet::new();
        fewer.add("layer.w", Tensor::zeros(Shape::matrix(3, 4)));
        assert!(load_params(&fewer, buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_shape_mismatch() {
        let mut buf = Vec::new();
        save_params(&params(1), &mut buf).unwrap();
        let mut wrong = ParamSet::new();
        wrong.add("layer.w", Tensor::zeros(Shape::matrix(4, 3))); // transposed
        wrong.add("layer.b", Tensor::zeros(Shape::matrix(1, 3)));
        assert!(load_params(&wrong, buf.as_slice()).is_err());
    }
}
