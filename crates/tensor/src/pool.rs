//! Size-bucketed recycling pool for tensor storage.
//!
//! Every [`crate::Tensor`] owns its elements through a [`Buffer`]; when the
//! last `Arc` holding a buffer drops, the backing `Vec<f32>` is returned to a
//! global free-list instead of the system allocator. Allocation requests are
//! rounded up to a power-of-two *size class* and served from the matching
//! free-list when possible, so a workload with fixed shapes — one STGNN-DJD
//! training step or serve forward re-executes the identical tape every time —
//! reaches a steady state where every request is a pool **hit** and the
//! allocator is never touched.
//!
//! The pool is deliberately simple:
//!
//! * free-lists are keyed by `len.next_power_of_two()` (min class
//!   [`MIN_CLASS`]), so a recycled buffer always has enough capacity for any
//!   request of its class and `resize` never reallocates;
//! * a global [`Mutex`] guards the lists — kernels allocate their output
//!   *before* fanning out to the `par` worker pool, so the lock is taken from
//!   one thread at a time on the hot path and contention is negligible;
//! * retained bytes are capped ([`MAX_POOLED_BYTES`]); beyond the cap a
//!   returned buffer is handed back to the allocator (counted as `dropped`);
//! * under `debug_assertions` every recycled buffer is filled with
//!   [`POISON`] (a signalling-NaN bit pattern) so any kernel that reads
//!   memory it did not initialise turns loudly non-finite instead of
//!   silently reusing a dead tensor's values.
//!
//! Cumulative counters ([`stats`]) expose hits/misses/recycles; the trainer
//! and the steady-state benchmark diff two snapshots to report
//! `allocs_per_step` (pool misses per step), which must be zero after
//! warm-up.

use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Smallest size class (elements). Requests below this are rounded up so
/// even scalar tensors (losses, reduction outputs) recycle through the pool.
pub const MIN_CLASS: usize = 64;

/// Cap on bytes retained across all free-lists; returns beyond it go back to
/// the allocator. Generous enough to hold every intermediate of a training
/// batch at paper scale, small enough not to matter on a laptop.
pub const MAX_POOLED_BYTES: usize = 512 << 20;

/// Debug fill pattern for recycled buffers: a NaN, so stale reads propagate
/// loudly through any arithmetic instead of resurrecting dead values.
pub const POISON: f32 = f32::from_bits(0xFFC0_DEAD);

struct PoolInner {
    /// Free vectors keyed by size class; every vector in class `c` has
    /// `capacity ∈ [c, 2c)`.
    shelves: HashMap<usize, Vec<Vec<f32>>>,
    pooled_bytes: usize,
}

static POOL: OnceLock<Mutex<PoolInner>> = OnceLock::new();

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static RECYCLED: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static OUTSTANDING_BYTES: AtomicI64 = AtomicI64::new(0);

fn pool() -> &'static Mutex<PoolInner> {
    POOL.get_or_init(|| {
        Mutex::new(PoolInner {
            shelves: HashMap::new(),
            pooled_bytes: 0,
        })
    })
}

/// Size class a request of `n` elements is served from (round up).
fn class_for_request(n: usize) -> usize {
    n.max(MIN_CLASS).next_power_of_two()
}

/// Size class a returned buffer of capacity `cap` is shelved under (round
/// down), so that every buffer in a shelf can serve any request of that
/// class without reallocating.
fn class_for_return(cap: usize) -> Option<usize> {
    if cap < MIN_CLASS {
        return None;
    }
    // Largest power of two ≤ cap.
    Some(1usize << (usize::BITS - 1 - cap.leading_zeros()))
}

/// Pops a cleared vector with `capacity ≥ n` (hit) or allocates one of the
/// full class capacity (miss).
fn take_raw(n: usize) -> Vec<f32> {
    // Allocation can't fail gracefully (no error path on the tensor hot
    // path), so only panic/delay faults make sense here — a delay models
    // allocator stalls under memory pressure.
    stgnn_faults::failpoint!("pool::alloc");
    let class = class_for_request(n);
    let popped = {
        let mut inner = pool().lock().unwrap_or_else(PoisonError::into_inner);
        match inner.shelves.get_mut(&class).and_then(Vec::pop) {
            Some(v) => {
                inner.pooled_bytes = inner.pooled_bytes.saturating_sub(v.capacity() * 4);
                Some(v)
            }
            None => None,
        }
    };
    match popped {
        Some(mut v) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            v.clear();
            v
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            Vec::with_capacity(class)
        }
    }
}

/// Returns a dead vector to its shelf (or the allocator, past the cap).
fn give_raw(mut v: Vec<f32>) {
    let cap = v.capacity();
    let Some(class) = class_for_return(cap) else {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    };
    if cfg!(debug_assertions) {
        v.clear();
        v.resize(cap, POISON);
    }
    let mut inner = pool().lock().unwrap_or_else(PoisonError::into_inner);
    if inner.pooled_bytes + cap * 4 > MAX_POOLED_BYTES {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    inner.pooled_bytes += cap * 4;
    inner.shelves.entry(class).or_default().push(v);
    RECYCLED.fetch_add(1, Ordering::Relaxed);
}

/// Tensor element storage: a `Vec<f32>` that came from (or will return to)
/// the pool. Dereferences to the element slice; `Clone` copies through the
/// pool (this is what powers the tensors' copy-on-write mutation).
pub struct Buffer {
    vec: Vec<f32>,
}

impl Buffer {
    fn from_raw(vec: Vec<f32>) -> Self {
        OUTSTANDING_BYTES.fetch_add(vec.capacity() as i64 * 4, Ordering::Relaxed);
        Buffer { vec }
    }

    /// Adopts a caller-built vector (e.g. [`crate::Tensor::from_vec`]).
    /// Costs nothing now; the elements recycle through the pool on drop.
    pub fn from_vec(vec: Vec<f32>) -> Self {
        Self::from_raw(vec)
    }

    /// A pooled buffer of `n` zeros.
    pub fn zeroed(n: usize) -> Self {
        Self::filled(n, 0.0)
    }

    /// A pooled buffer of `n` copies of `v`.
    pub fn filled(n: usize, v: f32) -> Self {
        let mut raw = take_raw(n);
        raw.resize(n, v);
        Self::from_raw(raw)
    }

    /// A pooled copy of a slice.
    pub fn copy_of(src: &[f32]) -> Self {
        let mut raw = take_raw(src.len());
        raw.extend_from_slice(src);
        Self::from_raw(raw)
    }

    /// A pooled buffer whose `n` elements are drawn from `f` in order —
    /// exactly the sequence a `(0..n).map(|_| f()).collect()` would produce,
    /// so RNG-fed fills (dropout masks) are reproducible.
    pub fn filled_with(n: usize, mut f: impl FnMut() -> f32) -> Self {
        let mut raw = take_raw(n);
        for _ in 0..n {
            raw.push(f());
        }
        Self::from_raw(raw)
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.vec
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.vec
    }
}

impl Deref for Buffer {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.vec
    }
}

impl DerefMut for Buffer {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.vec
    }
}

impl Clone for Buffer {
    fn clone(&self) -> Self {
        Self::copy_of(&self.vec)
    }
}

impl Drop for Buffer {
    fn drop(&mut self) {
        OUTSTANDING_BYTES.fetch_sub(self.vec.capacity() as i64 * 4, Ordering::Relaxed);
        give_raw(std::mem::take(&mut self.vec));
    }
}

/// Cumulative pool counters. Monotonic for the life of the process; diff two
/// snapshots ([`PoolStats::since`]) to measure one step or one request.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PoolStats {
    /// Requests served from a free-list (no allocator call).
    pub hits: u64,
    /// Requests that had to allocate.
    pub misses: u64,
    /// Dead buffers shelved for reuse.
    pub recycled: u64,
    /// Dead buffers handed back to the allocator (too small or pool full).
    pub dropped: u64,
    /// Bytes currently sitting in free-lists.
    pub pooled_bytes: u64,
    /// Bytes currently owned by live buffers.
    pub outstanding_bytes: i64,
}

impl PoolStats {
    /// Counter deltas since an earlier snapshot (gauges are kept as-is).
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            recycled: self.recycled.saturating_sub(earlier.recycled),
            dropped: self.dropped.saturating_sub(earlier.dropped),
            pooled_bytes: self.pooled_bytes,
            outstanding_bytes: self.outstanding_bytes,
        }
    }

    /// Fraction of requests served without touching the allocator.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A snapshot of the cumulative pool counters.
pub fn stats() -> PoolStats {
    let pooled_bytes = {
        let inner = pool().lock().unwrap_or_else(PoisonError::into_inner);
        inner.pooled_bytes as u64
    };
    PoolStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        recycled: RECYCLED.load(Ordering::Relaxed),
        dropped: DROPPED.load(Ordering::Relaxed),
        pooled_bytes,
        outstanding_bytes: OUTSTANDING_BYTES.load(Ordering::Relaxed),
    }
}

/// Releases every shelved buffer back to the allocator (tests, memory
/// pressure). Live buffers are unaffected.
pub fn trim() {
    let mut inner = pool().lock().unwrap_or_else(PoisonError::into_inner);
    inner.shelves.clear();
    inner.pooled_bytes = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_hits_after_warm_up() {
        let before = stats();
        let a = Buffer::zeroed(1000); // class 1024
        drop(a);
        let b = Buffer::filled(1000, 2.0);
        assert_eq!(b.len(), 1000);
        assert!(b.iter().all(|&v| v == 2.0), "poison leaked into a refill");
        let after = stats().since(&before);
        assert!(after.hits >= 1, "second take of a warm class must hit");
    }

    #[test]
    fn recycled_buffer_is_poisoned_then_cleared_on_reuse() {
        // Use an odd class so other tests' traffic can't interleave: 2^20.
        let n = (1 << 20) - 3;
        let mut a = Buffer::zeroed(n);
        a.as_mut_slice()[0] = 42.0;
        let ptr = a.as_slice().as_ptr() as usize;
        drop(a);
        let b = Buffer::zeroed(n);
        if b.as_slice().as_ptr() as usize == ptr {
            // Same storage came back: it must carry no stale values.
            assert!(b.iter().all(|&v| v == 0.0), "stale data on reuse");
        }
        trim();
    }

    #[test]
    fn small_buffers_round_up_to_min_class() {
        assert_eq!(class_for_request(1), MIN_CLASS);
        assert_eq!(class_for_request(65), 128);
        assert_eq!(class_for_return(10), None);
        assert_eq!(class_for_return(100), Some(64));
        assert_eq!(class_for_return(128), Some(128));
    }

    #[test]
    fn filled_with_matches_collect_order() {
        let mut k = 0;
        let buf = Buffer::filled_with(5, || {
            k += 1;
            k as f32
        });
        assert_eq!(buf.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn clone_copies_not_aliases() {
        let a = Buffer::copy_of(&[1.0, 2.0, 3.0]);
        let mut b = a.clone();
        b.as_mut_slice()[0] = 9.0;
        assert_eq!(a.as_slice()[0], 1.0);
        assert_ne!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }
}
