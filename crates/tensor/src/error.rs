//! Error type shared across the tensor crate.
//!
//! Shape mismatches are programming errors in model construction, but model
//! code is built dynamically from configuration (layer counts, head counts,
//! station counts), so they are surfaced as recoverable errors rather than
//! panics wherever a fallible signature is practical.

use std::fmt;

/// Errors produced by tensor and autograd operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Operand shapes are incompatible for the attempted operation.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand (empty for unary ops).
        rhs: Vec<usize>,
    },
    /// A tensor with an unexpected rank was supplied.
    RankMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Expected rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
        /// Full dims of the offending operand.
        shape: Vec<usize>,
    },
    /// An invalid argument (e.g. empty concat list, zero dimension).
    InvalidArgument(String),
}

impl Error {
    /// A [`Error::ShapeMismatch`] from two operand shapes. Used by both the
    /// runtime kernels and the `stgnn-analyze` symbolic shape inference so a
    /// pre-execution diagnostic reads *identically* to the runtime error the
    /// same tape would produce.
    pub fn shape_mismatch(op: &'static str, lhs: &crate::Shape, rhs: &crate::Shape) -> Error {
        Error::ShapeMismatch {
            op,
            lhs: lhs.dims().to_vec(),
            rhs: rhs.dims().to_vec(),
        }
    }

    /// A [`Error::RankMismatch`] carrying the offending operand's full dims.
    pub fn rank_mismatch(op: &'static str, expected: usize, shape: &crate::Shape) -> Error {
        Error::RankMismatch {
            op,
            expected,
            actual: shape.rank(),
            shape: shape.dims().to_vec(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs:?} and {rhs:?}")
            }
            Error::RankMismatch {
                op,
                expected,
                actual,
                shape,
            } => {
                write!(
                    f,
                    "{op}: expected rank {expected}, got {actual} (shape {shape:?})"
                )
            }
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

// Lets fault-injection seams (`failpoint!(site, io)`) surface an injected
// `io::Error` through kernel-level `Result`s; the message is preserved so
// the originating failpoint site stays visible in the error chain.
impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::InvalidArgument(e.to_string())
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = Error::ShapeMismatch {
            op: "matmul",
            lhs: vec![2, 3],
            rhs: vec![2, 3],
        };
        assert!(e.to_string().contains("matmul"));
        assert!(e.to_string().contains("[2, 3]"));

        let e = Error::RankMismatch {
            op: "transpose",
            expected: 2,
            actual: 3,
            shape: vec![2, 3, 4],
        };
        assert!(e.to_string().contains("expected rank 2"));
        assert!(e.to_string().contains("[2, 3, 4]"));

        let e = Error::InvalidArgument("empty concat".into());
        assert!(e.to_string().contains("empty concat"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::InvalidArgument("x".into()));
    }
}
