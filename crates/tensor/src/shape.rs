// lint: allow-file(L004): accessors index `dims` only after rank checks.
//! Shape arithmetic for row-major tensors.

use crate::error::{Error, Result};
use std::fmt;

/// The dimensions of a [`crate::Tensor`], in row-major order.
///
/// Rank 0 (scalar) through rank 3 are used by the STGNN-DJD reproduction:
/// rank-2 `n×n` station matrices dominate, while rank-3 `(k, n, n)` stacks of
/// historical flow matrices appear at the flow-convolution input.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// A scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// A rank-1 shape of length `n`.
    pub fn vector(n: usize) -> Self {
        Shape(vec![n])
    }

    /// A rank-2 shape with `rows × cols` elements.
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Shape(vec![rows, cols])
    }

    /// Builds a shape from arbitrary dimensions.
    pub fn from_dims(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// The dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total element count (1 for scalars).
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// True when the shape holds no elements (some dimension is zero).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of rows of a rank-2 shape.
    ///
    /// # Panics
    /// Panics if the shape is not rank 2; matrix accessors are only called on
    /// values already validated by the constructing op.
    pub fn rows(&self) -> usize {
        assert_eq!(self.rank(), 2, "rows() on non-matrix shape {self}");
        self.0[0]
    }

    /// Number of columns of a rank-2 shape.
    pub fn cols(&self) -> usize {
        assert_eq!(self.rank(), 2, "cols() on non-matrix shape {self}");
        self.0[1]
    }

    /// Validates this shape is rank 2 and returns `(rows, cols)`.
    pub fn as_matrix(&self, op: &'static str) -> Result<(usize, usize)> {
        if self.rank() == 2 {
            Ok((self.0[0], self.0[1]))
        } else {
            Err(Error::rank_mismatch(op, 2, self))
        }
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-dimensional index.
    ///
    /// # Panics
    /// Panics (in debug builds) when the index is out of bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.rank(), "index rank mismatch for {self}");
        let mut off = 0;
        let strides = self.strides();
        for (i, (&ix, &stride)) in index.iter().zip(&strides).enumerate() {
            debug_assert!(ix < self.0[i], "index {index:?} out of bounds for {self}");
            off += ix * stride;
        }
        off
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_len() {
        assert_eq!(Shape::scalar().len(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
        assert_eq!(Shape::vector(5).len(), 5);
        assert_eq!(Shape::matrix(3, 4).len(), 12);
        assert_eq!(Shape::from_dims(&[2, 3, 4]).len(), 24);
    }

    #[test]
    fn empty_shape() {
        assert!(Shape::matrix(0, 4).is_empty());
        assert!(!Shape::matrix(1, 4).is_empty());
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::from_dims(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::matrix(3, 4).strides(), vec![4, 1]);
        assert_eq!(Shape::vector(7).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn offset_walks_row_major() {
        let s = Shape::matrix(3, 4);
        assert_eq!(s.offset(&[0, 0]), 0);
        assert_eq!(s.offset(&[0, 3]), 3);
        assert_eq!(s.offset(&[2, 1]), 9);
        let t = Shape::from_dims(&[2, 3, 4]);
        assert_eq!(t.offset(&[1, 2, 3]), 12 + 8 + 3);
    }

    #[test]
    fn as_matrix_rejects_wrong_rank() {
        assert!(Shape::vector(3).as_matrix("op").is_err());
        assert_eq!(Shape::matrix(2, 5).as_matrix("op").unwrap(), (2, 5));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(Shape::matrix(2, 3).to_string(), "[2, 3]");
        assert_eq!(format!("{:?}", Shape::vector(4)), "Shape[4]");
    }
}
