//! Loss functions, including the paper's joint demand–supply loss (Eq 21).

use crate::autograd::Var;

/// Mean squared error between two same-shape vars.
pub fn mse(pred: &Var, target: &Var) -> Var {
    pred.sub(target).square().mean_all()
}

/// Mean absolute error between two same-shape vars.
pub fn mae(pred: &Var, target: &Var) -> Var {
    pred.sub(target).abs().mean_all()
}

/// The paper's training loss (Eq 21):
///
/// ```text
/// L = sqrt( (1/n) Σᵢ (xᵢ − x̂ᵢ)²  +  (1/n) Σᵢ (yᵢ − ŷᵢ)² )
/// ```
///
/// where `x` is demand and `y` is supply. Both operands are `n×1` columns
/// (or any equal shapes; `n` is taken from the element count).
pub fn joint_demand_supply_loss(
    demand_pred: &Var,
    demand_true: &Var,
    supply_pred: &Var,
    supply_true: &Var,
) -> Var {
    let d = demand_pred.sub(demand_true).square().mean_all();
    let s = supply_pred.sub(supply_true).square().mean_all();
    d.add(&s).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::{Graph, Param};
    use crate::tensor::Tensor;

    #[test]
    fn mse_and_mae_known_values() {
        let g = Graph::new();
        let p = g.leaf(Tensor::from_rows(&[&[1.0, 3.0]]));
        let t = g.leaf(Tensor::from_rows(&[&[0.0, 1.0]]));
        assert!((mse(&p, &t).with_value(|v| v.scalar()) - 2.5).abs() < 1e-6);
        assert!((mae(&p, &t).with_value(|v| v.scalar()) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn joint_loss_matches_eq21() {
        let g = Graph::new();
        let xp = g.leaf(Tensor::from_rows(&[&[2.0], &[0.0]]));
        let xt = g.leaf(Tensor::from_rows(&[&[0.0], &[0.0]]));
        let yp = g.leaf(Tensor::from_rows(&[&[1.0], &[1.0]]));
        let yt = g.leaf(Tensor::from_rows(&[&[0.0], &[0.0]]));
        // (1/2)(4+0) + (1/2)(1+1) = 2 + 1 = 3 → sqrt(3)
        let l = joint_demand_supply_loss(&xp, &xt, &yp, &yt);
        assert!((l.with_value(|v| v.scalar()) - 3.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn joint_loss_zero_at_perfect_prediction() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_rows(&[&[1.0], &[2.0]]));
        let y = g.leaf(Tensor::from_rows(&[&[3.0], &[4.0]]));
        let l = joint_demand_supply_loss(&x, &x, &y, &y);
        assert_eq!(l.with_value(|v| v.scalar()), 0.0);
    }

    #[test]
    fn joint_loss_is_differentiable() {
        let p = Param::new("xp", Tensor::from_rows(&[&[2.0], &[1.0]]));
        let g = Graph::new();
        let xp = g.param(&p);
        let xt = g.leaf(Tensor::from_rows(&[&[0.0], &[0.0]]));
        let y = g.leaf(Tensor::from_rows(&[&[0.0], &[0.0]]));
        joint_demand_supply_loss(&xp, &xt, &y, &y).backward();
        // dL/dx = x/(n·L); L = sqrt(2.5), n = 2
        let l = 2.5f32.sqrt();
        p.with_grad(|grad| {
            assert!((grad.data()[0] - 2.0 / (2.0 * l)).abs() < 1e-5);
            assert!((grad.data()[1] - 1.0 / (2.0 * l)).abs() < 1e-5);
        });
    }
}
