// lint: allow-file(L004): passes walk node/parent ids already validated
// against the tape by `Plan::compile`; indexing with them cannot miss.
//! Optimizer passes over the plan IR: constant folding, transpose elision,
//! in-place rewrites and probe caching. Chain fusion lives in
//! [`super::fuse`].
//!
//! Every pass only *annotates* roles — node ids, parents and the sweep
//! order never change, which is what keeps gradient deposits at the eager
//! sweep positions. Each pass's legality condition is documented on the
//! pass and mirrored in `DESIGN.md` §12.

use super::ir::{NodeBinding, Role};
use super::Plan;
use crate::autograd::Op;

/// Which nodes' value slots must stay live and untouched: spec roots, the
/// loss, and every declared dependency of a derived-leaf closure. Pinned
/// nodes are never erased by fusion, never stolen by an in-place rewrite.
pub(crate) fn pinned(plan: &Plan) -> Vec<bool> {
    let mut pinned = vec![false; plan.nodes.len()];
    for &r in plan.roots.iter().chain(plan.loss.iter()) {
        pinned[r] = true;
    }
    for &d in &plan.derived_deps {
        pinned[d] = true;
    }
    pinned
}

/// Who reads each node's value slot on replay, under the current roles:
/// one entry per (consumer node, parent slot) occurrence. A GEMM node reads
/// its *effective* operands (`ua`/`ub`); fused chains read their lead's
/// parents from the chain's out node; folded, erased, lead and
/// elided-transpose nodes read nothing (their compute is skipped or
/// absorbed). Derived leaves read their declared deps.
pub(crate) fn value_readers(plan: &Plan) -> Vec<Vec<usize>> {
    let mut readers: Vec<Vec<usize>> = vec![Vec::new(); plan.nodes.len()];
    for (id, node) in plan.nodes.iter().enumerate() {
        match &node.binding {
            NodeBinding::Derived(_) => {
                // Conservative: the closure may read any declared dep on
                // every replay.
                for &d in &plan.derived_deps {
                    readers[d].push(id);
                }
                continue;
            }
            NodeBinding::Compute => {}
            _ => continue,
        }
        match node.role {
            Role::Eager => {
                for &p in &node.parents {
                    readers[p].push(id);
                }
            }
            Role::Gemm { ua, ub, .. } => {
                readers[ua].push(id);
                readers[ub].push(id);
            }
            Role::FusedOut { chain } => {
                let src = plan.chains[chain].src;
                readers[src.0].push(id);
                if let Some(b) = src.1 {
                    readers[b].push(id);
                }
            }
            Role::Folded | Role::Erased | Role::FusedLead { .. } | Role::ElidedTranspose => {}
        }
    }
    readers
}

/// Constant folding: a compute node all of whose ancestors are constant
/// leaves keeps its traced value forever — forward skips it, backward
/// skips it (a constant subtree contains no params, inputs or derived
/// leaves, so no observable gradient is lost).
///
/// Legality: every parent constant/folded, and the op is not `Dropout` —
/// dropout must resample from the caller's RNG in node order to keep the
/// stream contract, however constant its input.
pub(crate) fn fold_constants(plan: &mut Plan) -> usize {
    let n = plan.nodes.len();
    let mut is_const = vec![false; n];
    let mut folded = 0;
    for id in 0..n {
        let node = &plan.nodes[id];
        match &node.binding {
            NodeBinding::Constant => is_const[id] = true,
            NodeBinding::Compute
                if !matches!(node.op, Op::Dropout { .. })
                    && !node.parents.is_empty()
                    && node.parents.iter().all(|&p| is_const[p]) =>
            {
                is_const[id] = true;
                plan.nodes[id].role = Role::Folded;
                folded += 1;
            }
            _ => {}
        }
    }
    folded
}

/// Transpose elision: a `Transpose` whose value is read only by one
/// `Matmul` folds into that matmul as a layout flag on the blocked GEMM
/// microkernel — the transpose is never materialised, in forward *or*
/// backward. Every matmul additionally becomes a [`Role::Gemm`] node so
/// its backward runs through the layout-flag kernel too, eliding the
/// `bᵀ`/`aᵀ` materialisations of the eager gradient formulas.
///
/// Bit-identity: the GEMM layout kernels walk the same multiply pairs in
/// the same ascending-contraction order as `matmul` over a materialised
/// transpose, with the same density-probe verdict
/// ([`crate::tensor::Tensor::probe_dense_t`] samples exactly the elements
/// a materialised transpose probe would). The elided transpose node keeps
/// its eager backward (`gᵀ`), so the gradient deposit into the underlying
/// matrix stays at its eager sweep position.
///
/// Legality (per operand): the parent is a `Transpose`, compute-bound,
/// still [`Role::Eager`], not pinned, and read by this matmul alone.
pub(crate) fn elide_transposes(plan: &mut Plan) -> (usize, usize) {
    let readers = value_readers(plan);
    let pinned = pinned(plan);
    let elidable = |plan: &Plan, t: usize, consumer: usize| -> bool {
        let node = &plan.nodes[t];
        matches!(node.op, Op::Transpose)
            && matches!(node.binding, NodeBinding::Compute)
            && node.role == Role::Eager
            && !pinned[t]
            && readers[t].len() == 1
            && readers[t][0] == consumer
    };
    let (mut elided, mut gemms) = (0, 0);
    for id in 0..plan.nodes.len() {
        let node = &plan.nodes[id];
        if !matches!(node.op, Op::Matmul)
            || !matches!(node.binding, NodeBinding::Compute)
            || node.role != Role::Eager
        {
            continue;
        }
        let (a, b) = (node.parents[0], node.parents[1]);
        let (ta, ua) = if elidable(plan, a, id) {
            (true, plan.nodes[a].parents[0])
        } else {
            (false, a)
        };
        let (tb, ub) = if elidable(plan, b, id) {
            (true, plan.nodes[b].parents[0])
        } else {
            (false, b)
        };
        plan.nodes[id].role = Role::Gemm { ta, tb, ua, ub };
        gemms += 1;
        if ta {
            plan.nodes[a].role = Role::ElidedTranspose;
            elided += 1;
        }
        if tb {
            plan.nodes[b].role = Role::ElidedTranspose;
            elided += 1;
        }
    }
    (elided, gemms)
}

/// Parent slots an op may overwrite in place, given whether the plan
/// trains (runs backward). The stolen slot's value is consumed by this
/// op's forward and must not be read by its backward: in a training plan
/// only ops whose backward formulas read no parent value (and no parent
/// shape) qualify. Inference plans never run backward, so any op with an
/// elementwise in-place kernel qualifies.
fn in_place_slots(op: &Op, training: bool) -> &'static [usize] {
    match op {
        // Backward reads nothing but the output gradient (and for the
        // saturating activations, the node's own output — not the parent).
        Op::Add | Op::Sub => &[0, 1],
        Op::AddScalar(_)
        | Op::MulScalar(_)
        | Op::Neg
        | Op::Elu
        | Op::Sigmoid
        | Op::Tanh
        | Op::Exp
        | Op::Sqrt => &[0],
        Op::AddRowBroadcast | Op::AddColBroadcast => &[0],
        // These read a parent value (or shape) in backward — inference only.
        Op::Mul | Op::Div if !training => &[0, 1],
        Op::Relu | Op::Square | Op::Abs | Op::MulColBroadcast if !training => &[0],
        _ => &[],
    }
}

/// Whether a node's *own* backward can still run after its value slot was
/// handed to a consumer (the slot then holds the shared placeholder).
/// True when the backward formula never reads the node's output value or
/// shape. GEMM nodes never read their output in backward, so they always
/// qualify; fused-out nodes do NOT — their backward reads the stored out
/// value as the final stage's output instead of recomputing the whole
/// chain (recomputing a transcendental stage costs far more than keeping
/// one buffer live).
fn backward_survives_steal(plan: &Plan, q: usize) -> bool {
    match plan.nodes[q].role {
        Role::Gemm { .. } => true,
        Role::Eager => matches!(
            plan.nodes[q].op,
            Op::Add
                | Op::Sub
                | Op::Mul
                | Op::Div
                | Op::AddScalar(_)
                | Op::MulScalar(_)
                | Op::Neg
                | Op::Matmul
                | Op::Transpose
                | Op::SliceRows { .. }
                | Op::Relu
                | Op::Square
                | Op::Abs
                | Op::AddRowBroadcast
                | Op::AddColBroadcast
                | Op::MulColBroadcast
                | Op::SumAll
                | Op::MeanAll
                | Op::SumCols
                | Op::SumRows
        ),
        _ => false,
    }
}

/// In-place rewrites: a node whose parent's value dies at this op (single
/// reader, unpinned, recomputed every forward) steals that parent's buffer
/// and overwrites it instead of cycling a fresh one through the pool —
/// one less stream of memory traffic per op.
///
/// Bit-identity: the in-place kernels apply the identical scalar formula
/// per element (`out[i] = a[i] ⊕ b[i]` becomes `a[i] = a[i] ⊕ b[i]`); no
/// accumulation order changes.
///
/// Legality: the stolen parent `q` is compute-bound, recomputed each
/// forward ([`Role::Eager`] / [`Role::FusedOut`] / [`Role::Gemm`] — never
/// [`Role::Folded`], whose frozen value would be clobbered permanently),
/// unpinned, read by this node alone (exactly once), same shape as the
/// output, its own backward survives the steal
/// ([`backward_survives_steal`]), its buffer is not shared (`Reshape`
/// aliases its parent's storage, so reshapes are excluded as `q`), and
/// this op's backward never reads the stolen value ([`in_place_slots`]).
pub(crate) fn mark_in_place(plan: &mut Plan) -> usize {
    let readers = value_readers(plan);
    let pinned = pinned(plan);
    let training = plan.loss.is_some();
    let mut marked = 0;
    for id in 0..plan.nodes.len() {
        let node = &plan.nodes[id];
        if !matches!(node.binding, NodeBinding::Compute) || node.role != Role::Eager {
            continue;
        }
        for &slot in in_place_slots(&node.op, training) {
            let q = node.parents[slot];
            let qn = &plan.nodes[q];
            let q_recomputed = matches!(qn.binding, NodeBinding::Compute)
                && matches!(
                    qn.role,
                    Role::Eager | Role::FusedOut { .. } | Role::Gemm { .. }
                );
            if q_recomputed
                && !matches!(
                    qn.op,
                    Op::Reshape(_) | Op::SliceRows { .. } | Op::Dropout { .. }
                )
                && !pinned[q]
                && readers[q].len() == 1
                && qn.shape == node.shape
                && (!training || backward_survives_steal(plan, q))
            {
                plan.in_place[id] = Some(slot);
                marked += 1;
                break;
            }
        }
    }
    marked
}

/// Probe caching: a matmul/GEMM whose lhs operand is *stable* — a constant
/// leaf, a folded subtree, or a derived leaf (whose density pattern is
/// structural: the flow-conservation mask) — probes its density once per
/// executor and replays the verdict.
///
/// The parity tests assert the cached and fresh verdicts agree on real
/// replay data; a disagreement would mean the operand's density crossed
/// the probe threshold between replays, which the stability condition is
/// chosen to preclude.
pub(crate) fn mark_probe_cache(plan: &mut Plan) -> usize {
    let stable = |plan: &Plan, v: usize| -> bool {
        matches!(
            plan.nodes[v].binding,
            NodeBinding::Constant | NodeBinding::Derived(_)
        ) || plan.nodes[v].role == Role::Folded
    };
    let mut marked = 0;
    for id in 0..plan.nodes.len() {
        let node = &plan.nodes[id];
        if !matches!(node.binding, NodeBinding::Compute) {
            continue;
        }
        let lhs = match node.role {
            Role::Gemm { ua, .. } => ua,
            Role::Eager if matches!(node.op, Op::Matmul) => node.parents[0],
            _ => continue,
        };
        if stable(plan, lhs) {
            plan.probe_cached[id] = true;
            marked += 1;
        }
    }
    marked
}
