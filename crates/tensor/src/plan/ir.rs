// lint: allow-file(L004): the compiler validates every node/parent id against
// the tape once in `Plan::compile`; the IR types here carry those
// proven-in-bounds ids for the executor's hot path.
//! Plan IR: node bindings and optimizer roles, fused-chain descriptors,
//! the [`PlanOptions`] switchboard and the [`PassReport`] scoreboard.
//!
//! The optimizer never rewrites the node list — it *annotates* it. Every
//! node keeps its traced id, op, parents and shape; passes only change a
//! node's [`Role`], which tells the executor how (or whether) to run it.
//! Keeping ids stable is what lets the backward sweep deposit gradients at
//! exactly the same reverse-topological positions as eager execution, the
//! load-bearing half of the bit-identity contract.

use crate::autograd::{Op, Param};
use crate::error::Result;
use crate::shape::Shape;
use crate::tensor::{stable_sigmoid, Tensor};
use std::fmt;
use std::rc::Rc;

/// Recomputes a derived leaf's value from earlier node values on each
/// replay. Receives the value slots of all nodes *preceding* the leaf
/// (slice index = node id), so a derived leaf may depend on any upstream
/// forward value — e.g. the flow-conservation mask, which eager mode
/// computes out-of-tape from the fused flow estimates.
pub type DerivedFn = Box<dyn Fn(&[Tensor]) -> Result<Tensor>>;

/// A derived leaf's recompute closure plus the node ids it actually reads.
///
/// The optimizer must know which upstream slots a derived closure touches:
/// those nodes are pinned — never erased by fusion, never clobbered by an
/// in-place rewrite — because the closure reads their live values on every
/// replay. Build one with [`LeafBinding::derived`].
pub struct DerivedSpec {
    /// Node ids (all `<` the leaf's id) whose value slots `f` reads.
    pub deps: Vec<usize>,
    /// The recompute closure.
    pub f: DerivedFn,
}

/// How one leaf node gets its value on each replay.
pub enum LeafBinding {
    /// Rebound from `inputs[i]` on every call (training examples, targets).
    Input(usize),
    /// Recomputed from earlier node values on every call.
    Derived(DerivedSpec),
}

impl LeafBinding {
    /// A derived binding that declares its upstream reads. `deps` lists the
    /// node ids `f` indexes into; declaring a superset is safe (it only
    /// pins more nodes), declaring a subset is not — an undeclared read may
    /// observe a slot the optimizer erased or recycled.
    pub fn derived(deps: Vec<usize>, f: impl Fn(&[Tensor]) -> Result<Tensor> + 'static) -> Self {
        LeafBinding::Derived(DerivedSpec {
            deps,
            f: Box::new(f),
        })
    }
}

/// Caller-supplied compilation spec: which leaves rebind, which roots to
/// read back, and where backward seeds.
#[derive(Default)]
pub struct PlanSpec {
    /// `(leaf node id, binding)` for every leaf that changes between
    /// replays. Leaves not listed stay frozen at their traced value
    /// (constants such as `ones`/`eye`).
    pub bindings: Vec<(usize, LeafBinding)>,
    /// Node ids whose values [`super::Plan::outputs`] reads back after a
    /// forward.
    pub roots: Vec<usize>,
    /// Node id [`super::Plan::backward`] seeds (the loss). `None` for
    /// inference-only plans.
    pub loss: Option<usize>,
}

/// Which optimizer passes [`super::Plan::compile_with`] runs. Every pass is
/// individually disableable so the parity suite can prove each one
/// bit-identical in isolation; [`Default`] turns everything on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanOptions {
    /// Freeze compute subtrees reachable only from constant leaves.
    pub fold_constants: bool,
    /// Fold single-consumer `Transpose` nodes into the consuming `Matmul`
    /// as layout flags (and run *every* matmul's backward through the
    /// layout-flag GEMM, eliding the two gradient transposes).
    pub elide_transposes: bool,
    /// Collapse elementwise chains into single-sweep fused ops.
    pub fuse: bool,
    /// Let an op overwrite a dying parent's buffer instead of writing a
    /// fresh one, and accumulate gradients in place.
    pub in_place: bool,
    /// Probe matmul lhs density once per executor for stable operands.
    pub cache_probes: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            fold_constants: true,
            elide_transposes: true,
            fuse: true,
            in_place: true,
            cache_probes: true,
        }
    }
}

impl PlanOptions {
    /// Every pass disabled — replay re-applies the eager formulas verbatim.
    pub fn none() -> Self {
        PlanOptions {
            fold_constants: false,
            elide_transposes: false,
            fuse: false,
            in_place: false,
            cache_probes: false,
        }
    }

    /// Every pass enabled (the [`Default`]).
    pub fn all() -> Self {
        Self::default()
    }
}

/// What each optimizer pass did to one compiled plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassReport {
    /// Compute nodes frozen by constant folding.
    pub folded: usize,
    /// `Transpose` nodes folded into a consumer's layout flags.
    pub elided_transposes: usize,
    /// Matmul nodes rerouted through the layout-flag GEMM microkernel.
    pub gemm_nodes: usize,
    /// Elementwise chains collapsed into fused sweeps.
    pub fused_chains: usize,
    /// Total nodes absorbed by those chains (each chain runs as one sweep).
    pub fused_ops: usize,
    /// Nodes that overwrite a dying parent's buffer in place.
    pub in_place_nodes: usize,
    /// Matmul/GEMM nodes whose lhs density probe is cached per executor.
    pub probe_cached: usize,
}

impl fmt::Display for PassReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "folded={} elided_transposes={} gemm={} fused={}ops/{}chains in_place={} probes_cached={}",
            self.folded,
            self.elided_transposes,
            self.gemm_nodes,
            self.fused_ops,
            self.fused_chains,
            self.in_place_nodes,
            self.probe_cached,
        )
    }
}

/// How one node gets its value on replay (resolved from [`PlanSpec`]).
pub(crate) enum NodeBinding {
    /// Evaluate the op from parent values.
    Compute,
    /// Keep the traced value (constant leaf).
    Constant,
    /// `inputs[i]`.
    Input(usize),
    /// `derived[i]`.
    Derived(usize),
    /// Re-read the parameter cell.
    Param(Rc<Param>),
}

/// How the executor treats one `Compute` node after optimization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Role {
    /// Run the eager forward/backward formulas (the unoptimized default).
    Eager,
    /// Constant-folded: the slot keeps its traced value forever; forward
    /// and backward both skip the node (its subtree holds no params).
    Folded,
    /// Interior of a fused chain: never evaluated, never swept — the
    /// chain's [`Role::FusedOut`] recomputes it per element.
    Erased,
    /// Head of a fused chain. No forward (the chain's sweep starts from
    /// this node's *parents*); at backward-sweep time the chain gradient
    /// stored in this node's grad slot is released — relayed to the parent
    /// for a unary lead, or pushed through the node's own eager backward
    /// formula for a zip/broadcast lead — so deposits to nodes outside the
    /// chain land at exactly the eager sweep position.
    FusedLead {
        /// `Some(parent)` for a unary-map lead: the stored gradient is
        /// already folded through the lead and deposits directly there.
        relay_to: Option<usize>,
    },
    /// Final node of a fused chain (index into `Plan::chains`): one sweep
    /// computes the whole chain forward; backward folds the output
    /// gradient back through the chain per element.
    FusedOut { chain: usize },
    /// Matmul routed through the layout-flag GEMM microkernel. `ua`/`ub`
    /// are the *effective* operand value ids: the elided transpose's input
    /// when the matching flag is set, the original parent otherwise.
    Gemm {
        ta: bool,
        tb: bool,
        ua: usize,
        ub: usize,
    },
    /// A transpose folded into its consuming matmul: no forward (the GEMM
    /// reads the untransposed value with a layout flag); backward keeps the
    /// eager `gᵀ` formula so the deposit into the underlying matrix happens
    /// at the same sweep position as eager execution.
    ElidedTranspose,
}

/// One node of the compiled schedule.
pub(crate) struct PlanNode {
    pub(crate) op: Op,
    pub(crate) parents: Vec<usize>,
    pub(crate) shape: Shape,
    pub(crate) binding: NodeBinding,
    pub(crate) role: Role,
}

/// A unary elementwise op a fused sweep can apply in registers. The `fwd`
/// and `bwd` bodies replicate the corresponding [`Tensor`] kernel closures
/// *exactly* — same intrinsics, same comparison directions — because the
/// fused sweep must produce the same bits the op-at-a-time kernels produce.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum MapOp {
    Relu,
    Elu,
    Sigmoid,
    Tanh,
    Exp,
    Square,
    Abs,
    Sqrt,
    Neg,
    AddScalar(f32),
    MulScalar(f32),
}

impl MapOp {
    /// The fusable unary ops. Dropout is deliberately absent: its forward
    /// draws from the caller's RNG in node order, so it must stay an eager
    /// node to keep the stream contract.
    pub(crate) fn from_op(op: &Op) -> Option<MapOp> {
        Some(match op {
            Op::Relu => MapOp::Relu,
            Op::Elu => MapOp::Elu,
            Op::Sigmoid => MapOp::Sigmoid,
            Op::Tanh => MapOp::Tanh,
            Op::Exp => MapOp::Exp,
            Op::Square => MapOp::Square,
            Op::Abs => MapOp::Abs,
            Op::Sqrt => MapOp::Sqrt,
            Op::Neg => MapOp::Neg,
            Op::AddScalar(s) => MapOp::AddScalar(*s),
            Op::MulScalar(s) => MapOp::MulScalar(*s),
            _ => return None,
        })
    }

    /// Per-element FLOP weight of this op, matching the tape cost model
    /// (`stgnn-analyze` weights transcendental-heavy ops ×8).
    pub(crate) fn cost_weight(self) -> u64 {
        match self {
            MapOp::Elu | MapOp::Sigmoid | MapOp::Tanh | MapOp::Exp | MapOp::Sqrt => 8,
            _ => 1,
        }
    }

    /// The scalar body of the op's forward kernel.
    #[inline]
    pub(crate) fn fwd(self, x: f32) -> f32 {
        match self {
            MapOp::Relu => x.max(0.0),
            MapOp::Elu => {
                if x > 0.0 {
                    x
                } else {
                    x.exp_m1()
                }
            }
            MapOp::Sigmoid => stable_sigmoid(x),
            MapOp::Tanh => x.tanh(),
            MapOp::Exp => x.exp(),
            MapOp::Square => x * x,
            MapOp::Abs => x.abs(),
            MapOp::Sqrt => x.sqrt(),
            MapOp::Neg => -x,
            MapOp::AddScalar(s) => x + s,
            MapOp::MulScalar(s) => x * s,
        }
    }

    /// The scalar body of the op's backward closure: the gradient `g`
    /// arriving at the output, folded to the input, given the input value
    /// `x_in` and output value `x_out` (the fused backward recomputes both,
    /// bit-identical to the slot values eager backward reads).
    #[inline]
    pub(crate) fn bwd(self, g: f32, x_in: f32, x_out: f32) -> f32 {
        match self {
            MapOp::Relu => {
                if x_in > 0.0 {
                    g
                } else {
                    0.0
                }
            }
            MapOp::Elu => {
                if x_out > 0.0 {
                    g
                } else {
                    g * (x_out + 1.0)
                }
            }
            MapOp::Sigmoid => g * x_out * (1.0 - x_out),
            MapOp::Tanh => g * (1.0 - x_out * x_out),
            MapOp::Exp => g * x_out,
            MapOp::Square => g * 2.0 * x_in,
            MapOp::Abs => {
                if x_in == 0.0 {
                    0.0
                } else {
                    g * x_in.signum()
                }
            }
            MapOp::Sqrt => g * 0.5 / x_out.max(1e-8),
            MapOp::Neg => -g,
            MapOp::AddScalar(_) => g,
            MapOp::MulScalar(s) => g * s,
        }
    }
}

/// A binary elementwise op usable as a fused chain's lead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ZipOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl ZipOp {
    #[inline]
    pub(crate) fn fwd(self, a: f32, b: f32) -> f32 {
        match self {
            ZipOp::Add => a + b,
            ZipOp::Sub => a - b,
            ZipOp::Mul => a * b,
            ZipOp::Div => a / b,
        }
    }
}

/// The first op of a fused chain — the one that reads values from outside
/// the chain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum LeadKind {
    /// Unary lead: the chain gradient relays through it to its parent.
    Map(MapOp),
    /// Binary zip lead over two same-shape operands.
    Zip(ZipOp),
    /// `matrix + row-vector` broadcast lead.
    AddRow,
    /// `matrix + column-vector` broadcast lead.
    AddCol,
    /// `matrix × column-vector` broadcast lead.
    MulCol,
}

/// Maximum unary stages after the lead: chain intermediates live in a
/// fixed-size stack array during the per-element backward recompute.
pub(crate) const MAX_STAGES: usize = 6;

/// One fused elementwise chain: `lead` feeds `stages` unary maps, the last
/// of which is node `out` — the only member whose value slot is written.
pub(crate) struct FusedChain {
    /// Node id of the lead (role [`Role::FusedLead`]).
    pub(crate) lead: usize,
    /// Node id of the final stage (role [`Role::FusedOut`]).
    pub(crate) out: usize,
    pub(crate) kind: LeadKind,
    /// Value ids the sweep reads: the lead's parents (second is `None` for
    /// unary leads).
    pub(crate) src: (usize, Option<usize>),
    /// The unary ops after the lead, in execution order (never empty).
    pub(crate) stages: Vec<MapOp>,
}

impl FusedChain {
    /// Nodes collapsed into this chain's single sweep.
    pub(crate) fn members(&self) -> usize {
        1 + self.stages.len()
    }
}

/// Structural summary of one compiled node, for external validators.
#[derive(Clone, Debug)]
pub struct PlanNodeSummary {
    /// The traced op's name (`Op::name`).
    pub op: &'static str,
    /// How the optimizer classified the node.
    pub kind: PlanOpKind,
    /// The value ids the node actually reads on replay (for a GEMM node
    /// these are the *effective* operands, post-elision).
    pub parents: Vec<usize>,
    /// The node's traced output shape.
    pub shape: Shape,
    /// For a fused-out node: the whole chain's per-element FLOP weight
    /// (lead + every stage, transcendental stages ×8). Zero elsewhere.
    pub fused_cost_per_elem: u64,
}

/// The executor-visible classification of a node — [`Role`] plus binding,
/// flattened for consumers outside this crate (`stgnn-analyze`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanOpKind {
    /// Computed with the eager formulas.
    Eager,
    /// Constant leaf (frozen traced value).
    Constant,
    /// Rebound input leaf.
    Input,
    /// Recomputed derived leaf.
    Derived,
    /// Parameter read.
    Param,
    /// Constant-folded compute node.
    Folded,
    /// Erased interior of a fused chain.
    Erased,
    /// Head of a fused chain.
    FusedLead,
    /// Final node of a fused chain.
    FusedOut {
        /// Unary stages folded into the sweep (excluding the lead).
        stages: usize,
    },
    /// Matmul routed through the layout-flag GEMM.
    Gemm {
        ta: bool,
        tb: bool,
        /// Whether the lhs density probe is cached per executor.
        probe_cached: bool,
    },
    /// Transpose folded into a consuming GEMM's layout flag.
    ElidedTranspose,
}

/// Structural summary of a compiled plan for external validation and FLOP
/// accounting, produced by [`super::Plan::summary`].
#[derive(Clone, Debug)]
pub struct PlanSummary {
    pub nodes: Vec<PlanNodeSummary>,
    /// What each pass did.
    pub report: PassReport,
    /// The options the plan was compiled with.
    pub options: PlanOptions,
}
