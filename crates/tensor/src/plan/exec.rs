// lint: allow-file(L004): replay indexes the per-node slot vectors with
// node/parent ids proven in bounds by `Plan::compile`; the fused sweeps
// index flat buffers whose lengths were validated against the traced
// shapes.
//! Plan execution: the forward/backward sweeps over [`PlanExec`] slots,
//! including the fused-chain sweeps, the layout-flag GEMM dispatch, the
//! in-place buffer steals and the density-probe cache.

use super::ir::{FusedChain, LeadKind, MapOp, NodeBinding, Role, ZipOp, MAX_STAGES};
use super::Plan;
use crate::autograd::Op;
use crate::error::{Error, Result};
use crate::par;
use crate::pool::Buffer;
use crate::shape::Shape;
use crate::tensor::{Tensor, PAR_GRAIN_OPS};

/// Per-replay state of a [`Plan`]: one value slot, gradient slot and
/// dropout-mask slot per node, plus argmax scratch for max-pool backward
/// and the cached density-probe verdicts. Slots are overwritten in place on
/// every replay; their buffers recycle through the [`crate::pool`].
pub struct PlanExec {
    pub(crate) values: Vec<Tensor>,
    pub(crate) grads: Vec<Option<Tensor>>,
    pub(crate) masks: Vec<Option<Tensor>>,
    pub(crate) argmax: Vec<Option<Vec<usize>>>,
    /// Per node: the cached matmul lhs density verdict (probe-cached nodes
    /// only), filled on the first replay.
    pub(crate) probe: Vec<Option<bool>>,
}

impl PlanExec {
    /// The forward value of node `id` from the latest replay.
    ///
    /// Under the optimizer, not every slot holds a live value: erased /
    /// fused-lead / elided nodes keep their stale traced value, and a slot
    /// whose buffer an in-place rewrite stole holds a scalar placeholder.
    /// Spec roots, the loss and declared derived deps are always live.
    pub fn value(&self, id: usize) -> Option<&Tensor> {
        self.values.get(id)
    }

    /// The gradient of node `id` from the latest backward, if it was
    /// reached.
    pub fn grad(&self, id: usize) -> Option<&Tensor> {
        self.grads.get(id).and_then(Option::as_ref)
    }

    /// The cached density-probe verdict for node `id`, if the plan caches
    /// it and at least one forward has run.
    pub fn probe_verdict(&self, id: usize) -> Option<bool> {
        self.probe.get(id).copied().flatten()
    }
}

/// Elementwise-sweep chunk length: 256 f32 = 1KB, so a live chunk plus the
/// backward's recomputed stage values ([`MAX_STAGES`]+1 stack buffers) stay
/// resident in L1 across the per-stage sweeps.
const FUSE_CHUNK: usize = 256;

/// Applies `m.fwd` to every element of `buf` in place, with the op match
/// hoisted out of the element loop: each arm closes over a constant
/// variant, so the dispatch folds away and LLVM vectorizes the sweep.
/// (Dispatching `MapOp::fwd` per element measured as a net fusion
/// *slowdown* — the branch in the inner loop defeats the autovectorizer.)
/// Per-element results are exactly `m.fwd(x)`.
#[inline]
fn sweep_fwd(m: MapOp, buf: &mut [f32]) {
    #[inline(always)]
    fn each(buf: &mut [f32], f: impl Fn(f32) -> f32) {
        for o in buf.iter_mut() {
            *o = f(*o);
        }
    }
    use MapOp::*;
    match m {
        Relu => each(buf, |x| Relu.fwd(x)),
        Elu => each(buf, |x| Elu.fwd(x)),
        Sigmoid => each(buf, |x| Sigmoid.fwd(x)),
        Tanh => each(buf, |x| Tanh.fwd(x)),
        Exp => each(buf, |x| Exp.fwd(x)),
        Square => each(buf, |x| Square.fwd(x)),
        Abs => each(buf, |x| Abs.fwd(x)),
        Sqrt => each(buf, |x| Sqrt.fwd(x)),
        Neg => each(buf, |x| Neg.fwd(x)),
        AddScalar(s) => each(buf, |x| AddScalar(s).fwd(x)),
        MulScalar(s) => each(buf, |x| MulScalar(s).fwd(x)),
    }
}

/// Folds the gradient sweep `g` in place through one stage: per element,
/// `g[i] = m.bwd(g[i], x_in[i], x_out[i])`, dispatch hoisted as in
/// [`sweep_fwd`].
#[inline]
fn sweep_bwd(m: MapOp, g: &mut [f32], x_in: &[f32], x_out: &[f32]) {
    #[inline(always)]
    fn each(g: &mut [f32], x_in: &[f32], x_out: &[f32], f: impl Fn(f32, f32, f32) -> f32) {
        for ((gv, &xi), &xo) in g.iter_mut().zip(x_in).zip(x_out) {
            *gv = f(*gv, xi, xo);
        }
    }
    use MapOp::*;
    match m {
        Relu => each(g, x_in, x_out, |gv, xi, xo| Relu.bwd(gv, xi, xo)),
        Elu => each(g, x_in, x_out, |gv, xi, xo| Elu.bwd(gv, xi, xo)),
        Sigmoid => each(g, x_in, x_out, |gv, xi, xo| Sigmoid.bwd(gv, xi, xo)),
        Tanh => each(g, x_in, x_out, |gv, xi, xo| Tanh.bwd(gv, xi, xo)),
        Exp => each(g, x_in, x_out, |gv, xi, xo| Exp.bwd(gv, xi, xo)),
        Square => each(g, x_in, x_out, |gv, xi, xo| Square.bwd(gv, xi, xo)),
        Abs => each(g, x_in, x_out, |gv, xi, xo| Abs.bwd(gv, xi, xo)),
        Sqrt => each(g, x_in, x_out, |gv, xi, xo| Sqrt.bwd(gv, xi, xo)),
        Neg => each(g, x_in, x_out, |gv, xi, xo| Neg.bwd(gv, xi, xo)),
        AddScalar(s) => each(g, x_in, x_out, |gv, xi, xo| AddScalar(s).bwd(gv, xi, xo)),
        MulScalar(s) => each(g, x_in, x_out, |gv, xi, xo| MulScalar(s).bwd(gv, xi, xo)),
    }
}

/// The zip-lead forward over a chunk: `out[i] = z.fwd(a[i], b[i])`,
/// dispatch hoisted.
#[inline]
fn sweep_zip(z: ZipOp, out: &mut [f32], a: &[f32], b: &[f32]) {
    #[inline(always)]
    fn each(out: &mut [f32], a: &[f32], b: &[f32], f: impl Fn(f32, f32) -> f32) {
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = f(x, y);
        }
    }
    use ZipOp::*;
    match z {
        Add => each(out, a, b, |x, y| Add.fwd(x, y)),
        Sub => each(out, a, b, |x, y| Sub.fwd(x, y)),
        Mul => each(out, a, b, |x, y| Mul.fwd(x, y)),
        Div => each(out, a, b, |x, y| Div.fwd(x, y)),
    }
}

/// Recomputes a chain's *intermediate* stage values from the lead-output
/// chunk `vals[0][..l]` and folds the chunk gradient `g` down through the
/// stages in place — the chunked form of the per-element stage fold. The
/// final stage's output is not recomputed: `out` is the chain-out node's
/// stored forward value, which the fused forward produced with the
/// identical scalar composition, so reading it is bit-identical to
/// recomputing it (and skips re-running the chain's most expensive stage —
/// typically the transcendental the chain was built around). Per element
/// this runs the same scalar `fwd`/`bwd` compositions in the same order
/// (elements are independent, so sweeping stage-by-stage instead of
/// element-by-element reorders nothing), leaving `g[i]` the gradient at
/// the lead's output.
#[inline]
fn fold_stages_chunk(
    stages: &[MapOp],
    vals: &mut [[f32; FUSE_CHUNK]; MAX_STAGES + 1],
    l: usize,
    g: &mut [f32],
    out: &[f32],
) {
    let n = stages.len();
    for k in 0..n.saturating_sub(1) {
        let (lo, hi) = vals.split_at_mut(k + 1);
        hi[0][..l].copy_from_slice(&lo[k][..l]);
        sweep_fwd(stages[k], &mut hi[0][..l]);
    }
    for k in (0..n).rev() {
        let x_out = if k + 1 == n { out } else { &vals[k + 1][..l] };
        sweep_bwd(stages[k], g, &vals[k][..l], x_out);
    }
}

fn accumulate(slot: &mut Option<Tensor>, g: Tensor, in_place: bool) -> Result<()> {
    match slot {
        Some(cur) => {
            if in_place {
                // `cur[i] += g[i]` — the same per-element sums `cur.add(&g)`
                // would produce, into the existing buffer (COW protects the
                // rare shared case).
                cur.add_assign(&g)?;
            } else {
                *cur = cur.add(&g)?;
            }
        }
        None => *slot = Some(g),
    }
    Ok(())
}

impl Plan {
    /// Allocates the per-replay state for this plan. Slots start at the
    /// traced values (cheap COW clones); the first few replays warm the
    /// buffer pool, after which replay performs zero pool misses.
    pub fn executor(&self) -> PlanExec {
        PlanExec {
            values: self.init_values.clone(),
            grads: vec![None; self.nodes.len()],
            masks: vec![None; self.nodes.len()],
            argmax: vec![None; self.nodes.len()],
            probe: vec![None; self.nodes.len()],
        }
    }

    /// Replays the forward pass over `exec`'s slots. Fails if the tape has
    /// dropout nodes — those need [`Plan::forward_with_rng`].
    pub fn forward(&self, exec: &mut PlanExec, inputs: &[Tensor]) -> Result<()> {
        if self.has_dropout {
            return Err(Error::InvalidArgument(
                "tape has dropout nodes; use forward_with_rng".into(),
            ));
        }
        self.forward_impl(exec, inputs, &mut || 0.0)
    }

    /// Replays the forward pass, resampling dropout masks from `rng` in
    /// node order — the same draw order eager tracing uses, so the RNG
    /// stream advances exactly as an eager step would advance it.
    pub fn forward_with_rng(
        &self,
        exec: &mut PlanExec,
        inputs: &[Tensor],
        rng: &mut impl rand::Rng,
    ) -> Result<()> {
        self.forward_impl(exec, inputs, &mut || rng.gen::<f32>())
    }

    fn forward_impl(
        &self,
        exec: &mut PlanExec,
        inputs: &[Tensor],
        draw: &mut dyn FnMut() -> f32,
    ) -> Result<()> {
        // An injected replay fault surfaces as a plan error, which is the
        // signal the trainer and serve paths fall back to eager on.
        stgnn_faults::failpoint!("plan::replay", io);
        if inputs.len() != self.num_inputs {
            return Err(Error::InvalidArgument(format!(
                "plan expects {} inputs, got {}",
                self.num_inputs,
                inputs.len()
            )));
        }
        // Free last step's gradients first so their buffers are back in the
        // pool before this step's takes begin.
        for g in &mut exec.grads {
            *g = None;
        }
        for id in 0..self.nodes.len() {
            let node = &self.nodes[id];
            let v = match &node.binding {
                NodeBinding::Constant => continue,
                NodeBinding::Input(i) => {
                    let t = &inputs[*i];
                    if t.shape() != &node.shape {
                        return Err(Error::InvalidArgument(format!(
                            "input {i} has shape {}, but the tape was traced with {}",
                            t.shape(),
                            node.shape
                        )));
                    }
                    t.clone()
                }
                NodeBinding::Derived(k) => {
                    let t = self.derived[*k](&exec.values[..id])?;
                    if t.shape() != &node.shape {
                        return Err(Error::InvalidArgument(format!(
                            "derived leaf {id} produced shape {}, traced as {}",
                            t.shape(),
                            node.shape
                        )));
                    }
                    t
                }
                NodeBinding::Param(p) => p.value(),
                NodeBinding::Compute => match node.role {
                    // Folded values stay frozen; erased/lead/elided nodes
                    // are absorbed by their consumer's sweep or flags.
                    Role::Folded
                    | Role::Erased
                    | Role::FusedLead { .. }
                    | Role::ElidedTranspose => continue,
                    Role::FusedOut { chain } => self.eval_fused(id, chain, exec)?,
                    Role::Gemm { ta, tb, ua, ub } => {
                        let probe = self.probe_for(id, exec)?;
                        exec.values[ua].matmul_layout_probed(&exec.values[ub], ta, tb, probe)?
                    }
                    Role::Eager => {
                        if self.in_place[id].is_some() {
                            self.eval_in_place(id, exec)?
                        } else if self.probe_cached[id] {
                            let probe = self.probe_for(id, exec)?;
                            exec.values[node.parents[0]]
                                .matmul_probed(&exec.values[node.parents[1]], probe)?
                        } else {
                            self.eval(id, exec, draw)?
                        }
                    }
                },
            };
            exec.values[id] = v;
        }
        Ok(())
    }

    /// The values of the spec's root nodes after a forward.
    pub fn outputs(&self, exec: &PlanExec) -> Vec<Tensor> {
        self.roots.iter().map(|&r| exec.values[r].clone()).collect()
    }

    /// The loss node's scalar value after a forward.
    pub fn loss_value(&self, exec: &PlanExec) -> Result<f32> {
        let id = self
            .loss
            .ok_or_else(|| Error::InvalidArgument("plan has no loss node".into()))?;
        Ok(exec.values[id].scalar())
    }

    /// Replays the backward sweep from the loss node, seeding its gradient
    /// with `seed_scale` — bit-identical to eager `mul_scalar(seed_scale)
    /// .backward()`, whose `ones` seed times the scale is exactly a
    /// `full(seed_scale)` gradient at the loss. Accumulated parameter
    /// gradients are deposited into the linked [`crate::autograd::Param`]
    /// cells in tape order, matching the eager deposit order. Call once per
    /// forward.
    pub fn backward(&self, exec: &mut PlanExec, seed_scale: f32) -> Result<()> {
        let root = self
            .loss
            .ok_or_else(|| Error::InvalidArgument("plan has no loss node to seed".into()))?;
        let in_place = self.options.in_place;
        accumulate(
            &mut exec.grads[root],
            Tensor::full(self.nodes[root].shape.clone(), seed_scale),
            in_place,
        )?;
        for id in (0..=root).rev() {
            if exec.grads[id].is_none() {
                continue;
            }
            if !matches!(self.nodes[id].binding, NodeBinding::Compute) {
                continue; // leaves, params and constants spread no further
            }
            let contribs = match self.nodes[id].role {
                // Folded subtrees hold no params; their gradients are
                // unobservable, exactly as in eager execution.
                Role::Folded => continue,
                // Never deposited into (its consumer is fused with it).
                Role::Erased => continue,
                Role::FusedOut { chain } => {
                    self.backprop_fused(id, chain, exec)?;
                    continue;
                }
                // The chain gradient stored here is already folded through
                // this unary lead — release it to the parent now, at the
                // lead's eager sweep position.
                Role::FusedLead {
                    relay_to: Some(src),
                } => match &exec.grads[id] {
                    Some(g) => vec![(src, g.clone())],
                    None => continue,
                },
                Role::Gemm { ta, tb, ua, ub } => self.backprop_gemm(id, exec, ta, tb, ua, ub)?,
                // A zip/broadcast lead runs its own eager backward formula
                // on the stored chain gradient; an elided transpose keeps
                // its eager `gᵀ`, so the deposit into the underlying matrix
                // stays at its eager sweep position.
                Role::Eager | Role::ElidedTranspose | Role::FusedLead { relay_to: None } => {
                    self.backprop(id, exec)?
                }
            };
            for (pid, g) in contribs {
                debug_assert!(pid < id, "tape order violated: node {id} feeds {pid}");
                accumulate(&mut exec.grads[pid], g, in_place)?;
            }
        }
        for (node_id, param) in &self.param_links {
            if let Some(g) = &exec.grads[*node_id] {
                param.accumulate_grad(g);
            }
        }
        Ok(())
    }

    /// Forward + backward + loss read in one call, for single-tape training
    /// steps and tests. Use the split [`Plan::forward_with_rng`] /
    /// [`Plan::backward`] calls when the seed scale depends on several
    /// forwards (the trainer's batch-RMSE scaling).
    pub fn step_with_rng(
        &self,
        exec: &mut PlanExec,
        inputs: &[Tensor],
        seed_scale: f32,
        rng: &mut impl rand::Rng,
    ) -> Result<f32> {
        self.forward_with_rng(exec, inputs, rng)?;
        self.backward(exec, seed_scale)?;
        self.loss_value(exec)
    }

    /// [`Plan::step_with_rng`] for dropout-free tapes.
    pub fn step(&self, exec: &mut PlanExec, inputs: &[Tensor], seed_scale: f32) -> Result<f32> {
        self.forward(exec, inputs)?;
        self.backward(exec, seed_scale)?;
        self.loss_value(exec)
    }

    /// The (possibly cached) lhs density verdict for a probe-cached
    /// matmul/GEMM node; `None` when the node probes fresh every call.
    fn probe_for(&self, id: usize, exec: &mut PlanExec) -> Result<Option<bool>> {
        if !self.probe_cached[id] {
            return Ok(None);
        }
        if let Some(v) = exec.probe[id] {
            return Ok(Some(v));
        }
        let node = &self.nodes[id];
        let v = match node.role {
            Role::Gemm { ta, ua, .. } => {
                if ta {
                    exec.values[ua].probe_dense_t()?
                } else {
                    exec.values[ua].probe_dense()
                }
            }
            _ => exec.values[node.parents[0]].probe_dense(),
        };
        exec.probe[id] = Some(v);
        Ok(Some(v))
    }

    /// One fused chain, forward: a single sweep computes the lead and every
    /// stage per element, writing only the out node's value.
    fn eval_fused(&self, id: usize, chain_idx: usize, exec: &PlanExec) -> Result<Tensor> {
        let chain = &self.chains[chain_idx];
        debug_assert_eq!(
            chain.out, id,
            "chain {chain_idx} annotated on the wrong node"
        );
        let stages = &chain.stages;
        let shape = self.nodes[id].shape.clone();
        let a = exec.values[chain.src.0].data();
        let ops = 1 + stages.len();
        let mut out = Buffer::zeroed(shape.len());
        match chain.kind {
            LeadKind::Map(m) => {
                let grain = (PAR_GRAIN_OPS / ops).max(1);
                par::for_each_row_chunk_mut(&mut out, 1, grain, |first, window| {
                    let end = first + window.len();
                    for (oc, ac) in window
                        .chunks_mut(FUSE_CHUNK)
                        .zip(a[first..end].chunks(FUSE_CHUNK))
                    {
                        oc.copy_from_slice(ac);
                        sweep_fwd(m, oc);
                        for &st in stages {
                            sweep_fwd(st, oc);
                        }
                    }
                });
            }
            LeadKind::Zip(z) => {
                let b = exec.values[self.zip_src(chain)?].data();
                let grain = (PAR_GRAIN_OPS / ops).max(1);
                par::for_each_row_chunk_mut(&mut out, 1, grain, |first, window| {
                    let end = first + window.len();
                    for ((oc, ac), bc) in window
                        .chunks_mut(FUSE_CHUNK)
                        .zip(a[first..end].chunks(FUSE_CHUNK))
                        .zip(b[first..end].chunks(FUSE_CHUNK))
                    {
                        sweep_zip(z, oc, ac, bc);
                        for &st in stages {
                            sweep_fwd(st, oc);
                        }
                    }
                });
            }
            LeadKind::AddRow | LeadKind::AddCol | LeadKind::MulCol => {
                let v = exec.values[self.zip_src(chain)?].data();
                let (_, c) = shape.as_matrix("fused_broadcast")?;
                let kind = chain.kind;
                let grain = (PAR_GRAIN_OPS / (c * ops).max(1)).max(1);
                par::for_each_row_chunk_mut(&mut out, c, grain, |first_row, window| {
                    for (i, o_row) in window.chunks_mut(c).enumerate() {
                        let r = first_row + i;
                        let a_row = &a[r * c..(r + 1) * c];
                        for (jc, (oc, ac)) in o_row
                            .chunks_mut(FUSE_CHUNK)
                            .zip(a_row.chunks(FUSE_CHUNK))
                            .enumerate()
                        {
                            match kind {
                                LeadKind::AddRow => {
                                    let j0 = jc * FUSE_CHUNK;
                                    sweep_zip(ZipOp::Add, oc, ac, &v[j0..j0 + oc.len()]);
                                }
                                LeadKind::AddCol => {
                                    let bv = v[r];
                                    for (o, &x) in oc.iter_mut().zip(ac) {
                                        *o = x + bv;
                                    }
                                }
                                _ => {
                                    let bv = v[r];
                                    for (o, &x) in oc.iter_mut().zip(ac) {
                                        *o = x * bv;
                                    }
                                }
                            }
                            for &st in stages {
                                sweep_fwd(st, oc);
                            }
                        }
                    }
                });
            }
        }
        Ok(Tensor::from_buffer(shape, out))
    }

    /// The second operand of a zip/broadcast chain lead.
    fn zip_src(&self, chain: &FusedChain) -> Result<usize> {
        chain.src.1.ok_or_else(|| {
            Error::InvalidArgument("fused zip/broadcast chain lost its second operand".into())
        })
    }

    /// One fused chain, backward: recomputes the chain's intermediate
    /// stage values per chunk (the final stage's output is read from the
    /// out node's stored value — see [`fold_stages_chunk`]), folds the out
    /// node's gradient down to the lead, and parks the result in the
    /// lead's grad slot. The backward sweep releases it when it reaches
    /// the lead — the eager deposit position for everything outside the
    /// chain.
    fn backprop_fused(&self, id: usize, chain_idx: usize, exec: &mut PlanExec) -> Result<()> {
        let chain = &self.chains[chain_idx];
        let stages = &chain.stages;
        let g_t = exec.grads[id]
            .as_ref()
            .ok_or_else(|| Error::InvalidArgument(format!("node {id} has no gradient")))?
            .clone();
        let g = g_t.data();
        let lead_shape = self.nodes[chain.lead].shape.clone();
        let a_t = exec.values[chain.src.0].clone();
        let a = a_t.data();
        // The chain-out node's stored forward value — the final stage's
        // output, never stolen by an in-place rewrite in a training plan
        // (see `backward_survives_steal`).
        let o_t = exec.values[id].clone();
        let ov = o_t.data();
        let ops = 2 * (1 + stages.len());
        let mut out = Buffer::zeroed(lead_shape.len());
        match chain.kind {
            LeadKind::Map(m) => {
                let grain = (PAR_GRAIN_OPS / ops).max(1);
                par::for_each_row_chunk_mut(&mut out, 1, grain, |first, window| {
                    let mut vals = [[0f32; FUSE_CHUNK]; MAX_STAGES + 1];
                    let end = first + window.len();
                    for (((oc, ac), gc), vc) in window
                        .chunks_mut(FUSE_CHUNK)
                        .zip(a[first..end].chunks(FUSE_CHUNK))
                        .zip(g[first..end].chunks(FUSE_CHUNK))
                        .zip(ov[first..end].chunks(FUSE_CHUNK))
                    {
                        let l = oc.len();
                        vals[0][..l].copy_from_slice(ac);
                        sweep_fwd(m, &mut vals[0][..l]);
                        oc.copy_from_slice(gc);
                        fold_stages_chunk(stages, &mut vals, l, oc, vc);
                        sweep_bwd(m, oc, ac, &vals[0][..l]);
                    }
                });
            }
            LeadKind::Zip(z) => {
                let b_t = exec.values[self.zip_src(chain)?].clone();
                let b = b_t.data();
                let grain = (PAR_GRAIN_OPS / ops).max(1);
                par::for_each_row_chunk_mut(&mut out, 1, grain, |first, window| {
                    let mut vals = [[0f32; FUSE_CHUNK]; MAX_STAGES + 1];
                    let end = first + window.len();
                    for ((((oc, ac), bc), gc), vc) in window
                        .chunks_mut(FUSE_CHUNK)
                        .zip(a[first..end].chunks(FUSE_CHUNK))
                        .zip(b[first..end].chunks(FUSE_CHUNK))
                        .zip(g[first..end].chunks(FUSE_CHUNK))
                        .zip(ov[first..end].chunks(FUSE_CHUNK))
                    {
                        let l = oc.len();
                        sweep_zip(z, &mut vals[0][..l], ac, bc);
                        oc.copy_from_slice(gc);
                        fold_stages_chunk(stages, &mut vals, l, oc, vc);
                    }
                });
            }
            LeadKind::AddRow | LeadKind::AddCol | LeadKind::MulCol => {
                let v_t = exec.values[self.zip_src(chain)?].clone();
                let v = v_t.data();
                let (_, c) = lead_shape.as_matrix("fused_broadcast_bw")?;
                let kind = chain.kind;
                let grain = (PAR_GRAIN_OPS / (c * ops).max(1)).max(1);
                par::for_each_row_chunk_mut(&mut out, c, grain, |first_row, window| {
                    let mut vals = [[0f32; FUSE_CHUNK]; MAX_STAGES + 1];
                    for (i, o_row) in window.chunks_mut(c).enumerate() {
                        let r = first_row + i;
                        let a_row = &a[r * c..(r + 1) * c];
                        let g_row = &g[r * c..(r + 1) * c];
                        let o_val_row = &ov[r * c..(r + 1) * c];
                        for (((jc, (oc, ac)), gc), vc) in o_row
                            .chunks_mut(FUSE_CHUNK)
                            .zip(a_row.chunks(FUSE_CHUNK))
                            .enumerate()
                            .zip(g_row.chunks(FUSE_CHUNK))
                            .zip(o_val_row.chunks(FUSE_CHUNK))
                        {
                            let l = oc.len();
                            match kind {
                                LeadKind::AddRow => {
                                    let j0 = jc * FUSE_CHUNK;
                                    sweep_zip(ZipOp::Add, &mut vals[0][..l], ac, &v[j0..j0 + l]);
                                }
                                LeadKind::AddCol => {
                                    let bv = v[r];
                                    for (o, &x) in vals[0][..l].iter_mut().zip(ac) {
                                        *o = x + bv;
                                    }
                                }
                                _ => {
                                    let bv = v[r];
                                    for (o, &x) in vals[0][..l].iter_mut().zip(ac) {
                                        *o = x * bv;
                                    }
                                }
                            }
                            oc.copy_from_slice(gc);
                            fold_stages_chunk(stages, &mut vals, l, oc, vc);
                        }
                    }
                });
            }
        }
        debug_assert!(
            exec.grads[chain.lead].is_none(),
            "fused lead {} received an external gradient",
            chain.lead
        );
        exec.grads[chain.lead] = Some(Tensor::from_buffer(lead_shape, out));
        Ok(())
    }

    /// Backward for a layout-flag GEMM node — the eager `g·bᵀ` / `aᵀ·g`
    /// formulas with the transposes folded into layout flags. The kernels
    /// walk the same multiply pairs in the same order, and the density
    /// probes sample exactly what eager's materialised operands would, so
    /// the contributions are bit-identical and deposit into the *original*
    /// parents (an elided transpose then relays with its own eager
    /// backward).
    fn backprop_gemm(
        &self,
        id: usize,
        exec: &PlanExec,
        ta: bool,
        tb: bool,
        ua: usize,
        ub: usize,
    ) -> Result<Vec<(usize, Tensor)>> {
        let node = &self.nodes[id];
        let g = exec.grads[id]
            .as_ref()
            .ok_or_else(|| Error::InvalidArgument(format!("node {id} has no gradient")))?;
        // dL/d(op a) = g · (op b)ᵀ; with op b = ub^(tb), its transpose is
        // ub^(!tb). Probes run fresh: `g` changes every step.
        let ga = g.matmul_layout_probed(&exec.values[ub], false, !tb, None)?;
        // dL/d(op b) = (op a)ᵀ · g, with (op a)ᵀ = ua^(!ta).
        let gb = exec.values[ua].matmul_layout_probed(g, !ta, false, None)?;
        Ok(vec![(node.parents[0], ga), (node.parents[1], gb)])
    }

    /// Evaluates one node by overwriting its dying parent's buffer: the
    /// marked parent's tensor is stolen out of its slot (a shared scalar
    /// placeholder is parked there) and mutated with the identical
    /// per-element formula the out-of-place kernel applies.
    fn eval_in_place(&self, id: usize, exec: &mut PlanExec) -> Result<Tensor> {
        let node = &self.nodes[id];
        let slot = self.in_place[id].ok_or_else(|| {
            Error::InvalidArgument(format!("node {id} is not an in-place rewrite"))
        })?;
        let q = node.parents[slot];
        let mut t = std::mem::replace(&mut exec.values[q], self.placeholder.clone());
        debug_assert_eq!(t.shape(), &node.shape, "in-place steal shape drifted");
        match &node.op {
            Op::Add | Op::Sub | Op::Mul | Op::Div => {
                let other = exec.values[node.parents[1 - slot]].clone();
                let b = other.data();
                let op = node.op.clone();
                let buf = t.data_mut();
                par::for_each_row_chunk_mut(buf, 1, PAR_GRAIN_OPS, |first, window| {
                    let end = first + window.len();
                    for (o, &y) in window.iter_mut().zip(&b[first..end]) {
                        let (l, r) = if slot == 0 { (*o, y) } else { (y, *o) };
                        *o = match op {
                            Op::Add => l + r,
                            Op::Sub => l - r,
                            Op::Mul => l * r,
                            _ => l / r,
                        };
                    }
                });
            }
            Op::AddRowBroadcast | Op::AddColBroadcast | Op::MulColBroadcast => {
                let other = exec.values[node.parents[1]].clone();
                let v = other.data();
                let (_, c) = node.shape.as_matrix("in_place_broadcast")?;
                let op = node.op.clone();
                let grain = (PAR_GRAIN_OPS / c.max(1)).max(1);
                let buf = t.data_mut();
                par::for_each_row_chunk_mut(buf, c, grain, |first_row, window| {
                    for (i, o_row) in window.chunks_mut(c).enumerate() {
                        match op {
                            Op::AddRowBroadcast => {
                                for (o, &b) in o_row.iter_mut().zip(v) {
                                    *o += b;
                                }
                            }
                            Op::AddColBroadcast => {
                                let b = v[first_row + i];
                                for o in o_row.iter_mut() {
                                    *o += b;
                                }
                            }
                            _ => {
                                let b = v[first_row + i];
                                for o in o_row.iter_mut() {
                                    *o *= b;
                                }
                            }
                        }
                    }
                });
            }
            op => {
                let m = MapOp::from_op(op).ok_or_else(|| {
                    Error::InvalidArgument(format!(
                        "node {id}: op {} has no in-place kernel",
                        node.op
                    ))
                })?;
                let buf = t.data_mut();
                par::for_each_row_chunk_mut(buf, 1, PAR_GRAIN_OPS, |_, window| {
                    for o in window.iter_mut() {
                        *o = m.fwd(*o);
                    }
                });
            }
        }
        Ok(t)
    }

    /// Evaluates one op from its parents' slot values — the identical
    /// kernel call the eager `Var` method makes.
    fn eval(
        &self,
        id: usize,
        exec: &mut PlanExec,
        draw: &mut dyn FnMut() -> f32,
    ) -> Result<Tensor> {
        let node = &self.nodes[id];
        let values = &exec.values;
        let pv = |k: usize| -> &Tensor { &values[node.parents[k]] };
        match &node.op {
            Op::Leaf | Op::Param => Err(Error::InvalidArgument(format!(
                "node {id}: {} nodes are bound, never computed",
                node.op
            ))),
            Op::Add => pv(0).add(pv(1)),
            Op::Sub => pv(0).sub(pv(1)),
            Op::Mul => pv(0).mul(pv(1)),
            Op::Div => pv(0).div(pv(1)),
            Op::AddScalar(s) => Ok(pv(0).add_scalar(*s)),
            Op::MulScalar(s) => Ok(pv(0).mul_scalar(*s)),
            Op::Neg => Ok(pv(0).neg()),
            Op::Matmul => pv(0).matmul(pv(1)),
            Op::Transpose => pv(0).transpose(),
            Op::Reshape(shape) => pv(0).reshape(shape.clone()),
            Op::SliceRows { start, end } => pv(0).slice_rows(*start, *end),
            Op::Relu => Ok(pv(0).relu()),
            Op::Elu => Ok(pv(0).elu()),
            Op::Sigmoid => Ok(pv(0).sigmoid()),
            Op::Tanh => Ok(pv(0).tanh()),
            Op::Exp => Ok(pv(0).exp()),
            Op::Square => Ok(pv(0).square()),
            Op::Abs => Ok(pv(0).abs()),
            Op::Sqrt => Ok(pv(0).sqrt()),
            Op::SoftmaxRows => pv(0).softmax_rows(),
            Op::Dropout { rate } => {
                let keep = 1.0 - rate;
                let x = pv(0);
                let mask = Tensor::filled_with(x.shape().clone(), || {
                    if draw() < keep {
                        1.0 / keep
                    } else {
                        0.0
                    }
                });
                let out = x.mul(&mask)?;
                exec.masks[id] = Some(mask);
                Ok(out)
            }
            Op::AddRowBroadcast => pv(0).add_row_broadcast(pv(1)),
            Op::AddColBroadcast => pv(0).add_col_broadcast(pv(1)),
            Op::MulColBroadcast => pv(0).mul_col_broadcast(pv(1)),
            Op::RowsMaxPool { groups } => {
                let v = pv(0);
                let (rows, cols) = v.shape().as_matrix("rows_max_pool")?;
                let out_rows = groups.len();
                let mut out = Buffer::filled(out_rows * cols, f32::NEG_INFINITY);
                let mut argmax = exec.argmax[id].take().unwrap_or_default();
                argmax.clear();
                argmax.resize(out_rows * cols, 0);
                for (i, group) in groups.iter().enumerate() {
                    for &r in group {
                        if r >= rows {
                            return Err(Error::InvalidArgument(format!(
                                "rows_max_pool: row {r} out of {rows}"
                            )));
                        }
                        for c in 0..cols {
                            let val = v.data()[r * cols + c];
                            if val > out[i * cols + c] {
                                out[i * cols + c] = val;
                                argmax[i * cols + c] = r;
                            }
                        }
                    }
                }
                exec.argmax[id] = Some(argmax);
                Ok(Tensor::from_buffer(Shape::matrix(out_rows, cols), out))
            }
            Op::SumAll => Ok(pv(0).sum_all()),
            Op::MeanAll => Ok(pv(0).mean_all()),
            Op::SumCols => pv(0).sum_cols(),
            Op::SumRows => pv(0).sum_rows(),
            Op::ConcatCols => {
                let parts: Vec<&Tensor> = node.parents.iter().map(|&p| &values[p]).collect();
                Tensor::concat_cols(&parts)
            }
        }
    }

    /// Re-applies the eager backward formula for node `id`, returning the
    /// gradient contribution per parent in parent order.
    fn backprop(&self, id: usize, exec: &PlanExec) -> Result<Vec<(usize, Tensor)>> {
        let node = &self.nodes[id];
        let g = exec.grads[id]
            .as_ref()
            .ok_or_else(|| Error::InvalidArgument(format!("node {id} has no gradient")))?;
        let values = &exec.values;
        let out = &values[id];
        let pid = |k: usize| node.parents[k];
        let pv = |k: usize| -> &Tensor { &values[node.parents[k]] };
        let one = |t: Tensor| -> Result<Vec<(usize, Tensor)>> { Ok(vec![(node.parents[0], t)]) };
        match &node.op {
            Op::Leaf | Op::Param => Ok(Vec::new()),
            Op::Add => Ok(vec![(pid(0), g.clone()), (pid(1), g.clone())]),
            Op::Sub => Ok(vec![(pid(0), g.clone()), (pid(1), g.neg())]),
            Op::Mul => Ok(vec![(pid(0), g.mul(pv(1))?), (pid(1), g.mul(pv(0))?)]),
            Op::Div => {
                let (av, bv) = (pv(0), pv(1));
                let ga = g.div(bv)?;
                // d(a/b)/db = -a / b²  — same composition as the eager closure.
                let gb = g.mul(av)?.div(&bv.square())?.neg();
                Ok(vec![(pid(0), ga), (pid(1), gb)])
            }
            Op::AddScalar(_) => one(g.clone()),
            Op::MulScalar(s) => one(g.mul_scalar(*s)),
            Op::Neg => one(g.neg()),
            Op::Matmul => {
                let (av, bv) = (pv(0), pv(1));
                let ga = g.matmul(&bv.transpose()?)?;
                let gb = av.transpose()?.matmul(g)?;
                Ok(vec![(pid(0), ga), (pid(1), gb)])
            }
            Op::Transpose => one(g.transpose()?),
            Op::Reshape(_) => one(g.reshape(pv(0).shape().clone())?),
            Op::SliceRows { start, end } => {
                let (_, cols) = pv(0).shape().as_matrix("slice_rows_bw")?;
                let mut full = Tensor::zeros(pv(0).shape().clone());
                full.data_mut()[start * cols..end * cols].copy_from_slice(g.data());
                one(full)
            }
            Op::Relu => {
                one(g.zip_map(pv(0), "relu_bw", |gv, xv| if xv > 0.0 { gv } else { 0.0 })?)
            }
            Op::Elu => {
                one(g.zip_map(
                    out,
                    "elu_bw",
                    |gv, ov| {
                        if ov > 0.0 {
                            gv
                        } else {
                            gv * (ov + 1.0)
                        }
                    },
                )?)
            }
            Op::Sigmoid => one(g.zip_map(out, "sigmoid_bw", |gv, sv| gv * sv * (1.0 - sv))?),
            Op::Tanh => one(g.zip_map(out, "tanh_bw", |gv, tv| gv * (1.0 - tv * tv))?),
            Op::Exp => one(g.mul(out)?),
            Op::Square => one(g.zip_map(pv(0), "square_bw", |gv, xv| gv * 2.0 * xv)?),
            Op::Abs => one(g.zip_map(pv(0), "abs_bw", |gv, xv| {
                if xv == 0.0 {
                    0.0
                } else {
                    gv * xv.signum()
                }
            })?),
            Op::Sqrt => one(g.zip_map(out, "sqrt_bw", |gv, sv| gv * 0.5 / sv.max(1e-8))?),
            Op::SoftmaxRows => {
                // dx_j = s_j (g_j − Σ_k g_k s_k), per row — serial, exactly
                // as the eager closure computes it.
                let s = out;
                let (r, c) = s.shape().as_matrix("softmax_bw")?;
                let mut dx = Tensor::zeros(Shape::matrix(r, c));
                let buf = dx.data_mut();
                for i in 0..r {
                    let srow = s.row(i);
                    let grow = g.row(i);
                    let dot: f32 = srow.iter().zip(grow).map(|(&sv, &gv)| sv * gv).sum();
                    for j in 0..c {
                        buf[i * c + j] = srow[j] * (grow[j] - dot);
                    }
                }
                one(dx)
            }
            Op::Dropout { .. } => {
                let mask = exec.masks[id].as_ref().ok_or_else(|| {
                    Error::InvalidArgument(format!(
                        "dropout node {id} has no mask — backward before forward?"
                    ))
                })?;
                one(g.mul(mask)?)
            }
            Op::AddRowBroadcast => Ok(vec![(pid(0), g.clone()), (pid(1), g.sum_rows()?)]),
            Op::AddColBroadcast => Ok(vec![(pid(0), g.clone()), (pid(1), g.sum_cols()?)]),
            Op::MulColBroadcast => {
                let (av, cv) = (pv(0), pv(1));
                let ga = g.mul_col_broadcast(cv)?;
                let gc = g.mul(av)?.sum_cols()?;
                Ok(vec![(pid(0), ga), (pid(1), gc)])
            }
            Op::RowsMaxPool { groups } => {
                let argmax = exec.argmax[id].as_ref().ok_or_else(|| {
                    Error::InvalidArgument(format!(
                        "rows_max_pool node {id} has no argmax — backward before forward?"
                    ))
                })?;
                let (out_rows, cols) = (groups.len(), out.shape().cols());
                let mut dx = Tensor::zeros(pv(0).shape().clone());
                let buf = dx.data_mut();
                for i in 0..out_rows {
                    for c in 0..cols {
                        buf[argmax[i * cols + c] * cols + c] += g.data()[i * cols + c];
                    }
                }
                one(dx)
            }
            Op::SumAll => one(Tensor::full(pv(0).shape().clone(), g.scalar())),
            Op::MeanAll => {
                let shape = pv(0).shape().clone();
                let inv = 1.0 / shape.len() as f32;
                one(Tensor::full(shape, g.scalar() * inv))
            }
            Op::SumCols => {
                let (r, c) = pv(0).shape().as_matrix("sum_cols_bw")?;
                let mut dx = Tensor::zeros(Shape::matrix(r, c));
                let buf = dx.data_mut();
                for i in 0..r {
                    let gv = g.data()[i];
                    buf[i * c..(i + 1) * c].fill(gv);
                }
                one(dx)
            }
            Op::SumRows => {
                let (r, c) = pv(0).shape().as_matrix("sum_rows_bw")?;
                let mut dx = Tensor::zeros(Shape::matrix(r, c));
                let buf = dx.data_mut();
                for i in 0..r {
                    buf[i * c..(i + 1) * c].copy_from_slice(g.data());
                }
                one(dx)
            }
            Op::ConcatCols => {
                let rows = out.shape().rows();
                let mut contribs = Vec::with_capacity(node.parents.len());
                let mut col = 0;
                for &p in &node.parents {
                    let w = values[p].shape().cols();
                    let mut part = Buffer::zeroed(rows * w);
                    for r in 0..rows {
                        let src = &g.row(r)[col..col + w];
                        part[r * w..(r + 1) * w].copy_from_slice(src);
                    }
                    contribs.push((p, Tensor::from_buffer(Shape::matrix(rows, w), part)));
                    col += w;
                }
                Ok(contribs)
            }
        }
    }
}
