// lint: allow-file(L004): chain discovery walks node/parent ids already
// validated against the tape by `Plan::compile`.
//! Elementwise-chain fusion: collapse `lead → map → map → …` chains into
//! one cache-resident sweep per chain.
//!
//! A chain is a zip (`add`/`sub`/`mul`/`div`), broadcast (`+row`/`+col`/
//! `×col`) or unary-map lead followed by one or more unary map stages,
//! where every link is the *only* reader of the previous node's value.
//! Eager replay materialises a full tensor per link — each a round trip
//! through the buffer pool and a full pass over memory. The fused sweep
//! computes the whole chain per element in registers, writing only the
//! final node's slot.
//!
//! **Backward bit-identity.** All interior gradient traffic of a chain is
//! private to it (each link's backward deposits only into the previous
//! link), so the only externally visible deposits are the lead's — and
//! those must land at the lead's eager sweep position, possibly many sweep
//! steps after the chain output's. The fused backward therefore runs in
//! two parts: at the *out* node's sweep position it recomputes the chain
//! per element and folds the output gradient down to the lead, storing the
//! result in the lead's grad slot; when the sweep later reaches the lead,
//! the stored gradient is released — relayed to the parent for a unary
//! lead (it is already folded through the lead's own map), or pushed
//! through the lead's unchanged eager backward formula for zip/broadcast
//! leads (none of which read the lead's own never-computed output value).
//! Every scalar formula in the fold replicates the eager kernel closures
//! exactly, and the recomputed intermediates are bit-identical to the slot
//! values eager backward would read, so the deposited bits match.
//!
//! Legality: lead and interior nodes are compute-bound, still
//! [`Role::Eager`], unpinned, and read by exactly their successor; stages
//! are unary [`MapOp`]s (never `Dropout` — the RNG stream contract);
//! chains cap at [`MAX_STAGES`] stages so backward intermediates fit a
//! stack array. The final node may be pinned or multi-consumer — its value
//! is fully computed.

use super::ir::{FusedChain, LeadKind, MapOp, NodeBinding, Role, ZipOp, MAX_STAGES};
use super::passes::{pinned, value_readers};
use super::Plan;
use crate::autograd::Op;

/// What kind of chain lead this op can be, if any.
fn lead_kind(op: &Op) -> Option<LeadKind> {
    Some(match op {
        Op::Add => LeadKind::Zip(ZipOp::Add),
        Op::Sub => LeadKind::Zip(ZipOp::Sub),
        Op::Mul => LeadKind::Zip(ZipOp::Mul),
        Op::Div => LeadKind::Zip(ZipOp::Div),
        Op::AddRowBroadcast => LeadKind::AddRow,
        Op::AddColBroadcast => LeadKind::AddCol,
        Op::MulColBroadcast => LeadKind::MulCol,
        _ => LeadKind::Map(MapOp::from_op(op)?),
    })
}

/// Runs chain discovery, annotating roles and filling `plan.chains`.
/// Returns `(chains, total nodes fused)`.
pub(crate) fn fuse_chains(plan: &mut Plan) -> (usize, usize) {
    let readers = value_readers(plan);
    let pinned = pinned(plan);
    let n = plan.nodes.len();
    let mut taken = vec![false; n];
    let eager_compute = |plan: &Plan, id: usize| -> bool {
        matches!(plan.nodes[id].binding, NodeBinding::Compute) && plan.nodes[id].role == Role::Eager
    };
    let mut fused_ops = 0;

    for lead in 0..n {
        if taken[lead] || !eager_compute(plan, lead) || pinned[lead] {
            continue;
        }
        let Some(kind) = lead_kind(&plan.nodes[lead].op) else {
            continue;
        };
        // The lead's value is never computed, so it must die here: exactly
        // one reader, which must be a fusable map stage.
        if readers[lead].len() != 1 {
            continue;
        }
        let mut stages: Vec<MapOp> = Vec::new();
        let mut members = vec![lead];
        let mut cur = lead;
        loop {
            if stages.len() == MAX_STAGES {
                break;
            }
            // Interior nodes (everything fused so far except a completed
            // chain's final stage) must die into their successor.
            if readers[cur].len() != 1 || (cur != lead && pinned[cur]) {
                break;
            }
            let next = readers[cur][0];
            if taken[next]
                || !eager_compute(plan, next)
                || plan.nodes[next].parents != [cur]
                || matches!(plan.nodes[next].op, Op::Dropout { .. })
            {
                break;
            }
            let Some(m) = MapOp::from_op(&plan.nodes[next].op) else {
                break;
            };
            stages.push(m);
            members.push(next);
            cur = next;
        }
        if stages.is_empty() {
            continue; // nothing to fuse past the lead
        }
        let out = cur;
        let parents = &plan.nodes[lead].parents;
        let (src, relay_to) = match kind {
            LeadKind::Map(_) => ((parents[0], None), Some(parents[0])),
            _ => ((parents[0], Some(parents[1])), None),
        };
        let chain_idx = plan.chains.len();
        plan.chains.push(FusedChain {
            lead,
            out,
            kind,
            src,
            stages,
        });
        plan.nodes[lead].role = Role::FusedLead { relay_to };
        for &m in &members[1..members.len() - 1] {
            plan.nodes[m].role = Role::Erased;
        }
        plan.nodes[out].role = Role::FusedOut { chain: chain_idx };
        fused_ops += plan.chains[chain_idx].members();
        for &m in &members {
            taken[m] = true;
        }
    }
    (plan.chains.len(), fused_ops)
}
