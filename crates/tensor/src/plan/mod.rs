// lint: allow-file(L004): the compiler validates every node/parent id against
// the tape once in `Plan::compile`; replay then indexes the per-node slot
// vectors with those proven-in-bounds ids on the hot path.
//! Compiled tape replay: execute one traced graph many times without
//! rebuilding it — now through an optimizing compiler.
//!
//! STGNN-DJD's tape has a fixed structure for a given station count and
//! window configuration — every training step and every serve forward
//! re-traces the identical graph. Eager mode pays for that by rebuilding
//! every [`crate::autograd::Var`] node per step: `Rc` churn, backward
//! closures, shape clones, and a fresh allocation per op output.
//!
//! [`Plan::compile`] takes one [`TapeSnapshot`] traced by eager mode and
//! turns it into a static schedule: ops in topological (= insertion) order,
//! leaf **bindings** that say how each leaf gets its value on replay
//! (rebound input, recomputed derived value, re-read parameter, or frozen
//! constant), and parameter links for gradient writeback. A [`PlanExec`]
//! holds the per-node value/gradient/mask slots; replaying overwrites the
//! slots in place, so each step's outputs recycle the previous step's
//! buffers through the [`crate::pool`] and the steady state performs **zero
//! pool misses** — the allocator is never touched.
//!
//! On top of the schedule, [`Plan::compile_with`] runs an optimizer
//! pipeline ([`PlanOptions`] gates each pass; see `DESIGN.md` §12):
//!
//! 1. **Constant folding** — compute subtrees reachable only from constant
//!    leaves are frozen at their traced values and skipped entirely.
//! 2. **Transpose elision** — a single-consumer `Transpose` feeding a
//!    `Matmul` becomes a layout flag on a blocked GEMM microkernel, and
//!    every matmul's backward runs through the same layout-flag kernel,
//!    eliding the two gradient transposes eager backward materialises.
//! 3. **Elementwise fusion** — chains of zip/broadcast/unary elementwise
//!    ops collapse into one cache-resident sweep; backward recomputes the
//!    chain per element and releases the folded gradient at the chain
//!    head's original sweep position.
//! 4. **In-place rewrites** — where liveness allows, an op overwrites its
//!    dying parent's buffer instead of cycling a fresh one through the
//!    pool, and gradient accumulation adds into the existing slot.
//! 5. **Probe caching** — matmul lhs density probes against stable
//!    (constant/derived/folded) operands run once per executor.
//!
//! Replay remains **bit-identical** to eager execution at any thread
//! count: every pass preserves each output element's exact f32 operation
//! sequence and every gradient deposit's sweep position (see the legality
//! notes on each pass). Dropout nodes are never folded, fused or elided,
//! so a plan step consumes the RNG stream exactly like the eager step it
//! replaces. The parity suite in `crates/core/tests/plan_parity.rs` proves
//! this per pass, per thread count, down to the bit.
//!
//! One caveat is inherent to replay: ops whose *structure* (not value) was
//! derived from input data at trace time — [`Op::RowsMaxPool`] group lists
//! built from a data-dependent mask — replay the traced structure. Callers
//! that configure such ops from per-input data (the FCG max aggregator)
//! must keep the eager path; input-independent structures (the PCG
//! aggregators, whose groups cover all stations) replay correctly.

mod exec;
mod fuse;
mod ir;
mod passes;

pub use exec::PlanExec;
pub use ir::{
    DerivedFn, DerivedSpec, LeafBinding, PassReport, PlanNodeSummary, PlanOpKind, PlanOptions,
    PlanSpec, PlanSummary,
};

use crate::autograd::{Op, Param, ParamSet, TapeSnapshot};
use crate::error::{Error, Result};
use crate::tensor::Tensor;
use ir::{FusedChain, NodeBinding, PlanNode, Role};
use std::collections::HashMap;
use std::rc::Rc;

/// A compiled, replayable schedule for one traced tape. Cheap to execute,
/// immutable once compiled; per-replay state lives in [`PlanExec`].
pub struct Plan {
    pub(crate) nodes: Vec<PlanNode>,
    pub(crate) derived: Vec<DerivedFn>,
    /// `(node id, param)` in tape order — the deposit order of eager
    /// `backward`.
    pub(crate) param_links: Vec<(usize, Rc<Param>)>,
    pub(crate) init_values: Vec<Tensor>,
    pub(crate) roots: Vec<usize>,
    pub(crate) loss: Option<usize>,
    pub(crate) num_inputs: usize,
    pub(crate) has_dropout: bool,
    /// Node ids any derived closure reads — pinned against erasure and
    /// in-place clobbering.
    pub(crate) derived_deps: Vec<usize>,
    /// Fused chains, indexed by [`Role::FusedOut`].
    pub(crate) chains: Vec<FusedChain>,
    /// Per node: the parent slot whose buffer this node steals and
    /// overwrites in place (`None` = normal output).
    pub(crate) in_place: Vec<Option<usize>>,
    /// Per node: whether the matmul/GEMM lhs density probe is cached in the
    /// executor instead of re-run each replay.
    pub(crate) probe_cached: Vec<bool>,
    pub(crate) options: PlanOptions,
    pub(crate) report: PassReport,
    /// Shared scalar parked in a slot whose buffer was stolen — cloning it
    /// is an `Arc` bump, so in-place rewrites stay allocation-free.
    pub(crate) placeholder: Tensor,
}

impl Plan {
    /// Compiles a traced tape into a replayable plan with every optimizer
    /// pass enabled ([`PlanOptions::default`]).
    ///
    /// Validates the tape topology (parents strictly precede children),
    /// resolves every `Param` node against `params` by name, and checks the
    /// spec's bindings point at leaf nodes. Returns
    /// [`Error::InvalidArgument`] on any structural defect.
    pub fn compile(snapshot: &TapeSnapshot, params: &ParamSet, spec: PlanSpec) -> Result<Self> {
        Self::compile_with(snapshot, params, spec, PlanOptions::default())
    }

    /// [`Plan::compile`] with an explicit optimizer-pass selection.
    pub fn compile_with(
        snapshot: &TapeSnapshot,
        params: &ParamSet,
        spec: PlanSpec,
        options: PlanOptions,
    ) -> Result<Self> {
        let n = snapshot.nodes.len();
        if n == 0 {
            return Err(Error::InvalidArgument(
                "cannot compile an empty tape".into(),
            ));
        }
        let mut by_name: HashMap<&str, Rc<Param>> = HashMap::new();
        for p in params.params() {
            if by_name.insert(p.name(), Rc::clone(p)).is_some() {
                return Err(Error::InvalidArgument(format!(
                    "duplicate parameter name {:?} — plan compilation resolves params by name",
                    p.name()
                )));
            }
        }

        let mut bindings: HashMap<usize, LeafBinding> = HashMap::new();
        let mut num_inputs = 0usize;
        for (id, b) in spec.bindings {
            if let LeafBinding::Input(i) = &b {
                num_inputs = num_inputs.max(i + 1);
            }
            if bindings.insert(id, b).is_some() {
                return Err(Error::InvalidArgument(format!(
                    "node {id} bound twice in PlanSpec"
                )));
            }
        }

        let mut nodes = Vec::with_capacity(n);
        let mut derived: Vec<DerivedFn> = Vec::new();
        let mut derived_deps: Vec<usize> = Vec::new();
        let mut param_links = Vec::new();
        let mut init_values = Vec::with_capacity(n);
        let mut has_dropout = false;
        for (id, info) in snapshot.nodes.iter().enumerate() {
            if info.parents.iter().any(|&p| p >= id) {
                return Err(Error::InvalidArgument(format!(
                    "node {id} has a parent at or after itself — not a valid tape"
                )));
            }
            if info.value.shape() != &info.shape {
                return Err(Error::InvalidArgument(format!(
                    "node {id} recorded shape {} but carries a value of shape {}",
                    info.shape,
                    info.value.shape()
                )));
            }
            let binding = match (&info.op, bindings.remove(&id)) {
                (Op::Leaf, Some(LeafBinding::Input(i))) => NodeBinding::Input(i),
                (Op::Leaf, Some(LeafBinding::Derived(spec))) => {
                    for &dep in &spec.deps {
                        if dep >= id {
                            return Err(Error::InvalidArgument(format!(
                                "derived leaf {id} declares dep {dep}, which does not precede it"
                            )));
                        }
                    }
                    derived_deps.extend_from_slice(&spec.deps);
                    derived.push(spec.f);
                    NodeBinding::Derived(derived.len() - 1)
                }
                (Op::Leaf, None) => NodeBinding::Constant,
                (_, Some(_)) => {
                    return Err(Error::InvalidArgument(format!(
                        "PlanSpec binds node {id}, but it is a {} node, not a leaf",
                        info.op
                    )));
                }
                (Op::Param, None) => {
                    let name = info.param.as_deref().ok_or_else(|| {
                        Error::InvalidArgument(format!("param node {id} carries no name"))
                    })?;
                    let p = by_name.get(name).ok_or_else(|| {
                        Error::InvalidArgument(format!(
                            "param node {id} refers to {name:?}, absent from the ParamSet"
                        ))
                    })?;
                    param_links.push((id, Rc::clone(p)));
                    NodeBinding::Param(Rc::clone(p))
                }
                (_, None) => NodeBinding::Compute,
            };
            if matches!(info.op, Op::Dropout { .. }) {
                has_dropout = true;
            }
            nodes.push(PlanNode {
                op: info.op.clone(),
                parents: info.parents.clone(),
                shape: info.shape.clone(),
                binding,
                role: Role::Eager,
            });
            init_values.push(info.value.clone());
        }
        if let Some((id, _)) = bindings.into_iter().next() {
            return Err(Error::InvalidArgument(format!(
                "PlanSpec binds node {id}, which is outside the tape"
            )));
        }
        for &r in spec.roots.iter().chain(spec.loss.iter()) {
            if r >= n {
                return Err(Error::InvalidArgument(format!(
                    "root node {r} is outside the tape of {n} nodes"
                )));
            }
        }
        let mut plan = Plan {
            nodes,
            derived,
            param_links,
            init_values,
            roots: spec.roots,
            loss: spec.loss,
            num_inputs,
            has_dropout,
            derived_deps,
            chains: Vec::new(),
            in_place: vec![None; n],
            probe_cached: vec![false; n],
            options,
            report: PassReport::default(),
            placeholder: Tensor::from_scalar(0.0),
        };
        plan.optimize();
        Ok(plan)
    }

    /// Runs the enabled optimizer passes, in dependency order: folding
    /// first (so later passes see frozen subtrees), then structural
    /// rewrites (elision, fusion), then the purely-local passes (in-place,
    /// probe marks) over the final roles.
    fn optimize(&mut self) {
        let mut report = PassReport::default();
        if self.options.fold_constants {
            report.folded = passes::fold_constants(self);
        }
        if self.options.elide_transposes {
            let (elided, gemms) = passes::elide_transposes(self);
            report.elided_transposes = elided;
            report.gemm_nodes = gemms;
        }
        if self.options.fuse {
            let (chains, ops) = fuse::fuse_chains(self);
            report.fused_chains = chains;
            report.fused_ops = ops;
        }
        if self.options.in_place {
            report.in_place_nodes = passes::mark_in_place(self);
        }
        if self.options.cache_probes {
            report.probe_cached = passes::mark_probe_cache(self);
        }
        self.report = report;
    }

    /// Number of nodes in the compiled schedule.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a plan over an empty tape (cannot be constructed).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of rebindable inputs `forward` expects.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// True when the tape contains dropout nodes and replay therefore needs
    /// the RNG-taking entry points.
    pub fn needs_rng(&self) -> bool {
        self.has_dropout
    }

    /// The optimizer options this plan was compiled with.
    pub fn options(&self) -> PlanOptions {
        self.options
    }

    /// What each optimizer pass did at compile time.
    pub fn pass_report(&self) -> PassReport {
        self.report
    }

    /// Node ids whose lhs density probe is cached per executor (matmul /
    /// GEMM nodes over stable operands). Exposed for the probe-agreement
    /// tests.
    pub fn cached_probe_nodes(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&id| self.probe_cached[id])
            .collect()
    }

    /// Recomputes the probe verdict for node `id` from the executor's
    /// current slot values — what an uncached replay would decide right
    /// now. `None` when the node is not a probe-cached matmul/GEMM.
    pub fn fresh_probe(&self, exec: &PlanExec, id: usize) -> Option<bool> {
        if !self.probe_cached.get(id).copied().unwrap_or(false) {
            return None;
        }
        let node = &self.nodes[id];
        match node.role {
            Role::Gemm { ta, ua, .. } => {
                let lhs = exec.value(ua)?;
                Some(if ta {
                    lhs.probe_dense_t().ok()?
                } else {
                    lhs.probe_dense()
                })
            }
            _ => Some(exec.value(node.parents[0])?.probe_dense()),
        }
    }

    /// A structural summary for external validators (`stgnn-analyze`): one
    /// entry per node with its optimizer classification and *effective*
    /// parent reads.
    pub fn summary(&self) -> PlanSummary {
        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .map(|(id, node)| {
                let (kind, parents) = match (&node.binding, node.role) {
                    (NodeBinding::Constant, _) => (PlanOpKind::Constant, node.parents.clone()),
                    (NodeBinding::Input(_), _) => (PlanOpKind::Input, node.parents.clone()),
                    (NodeBinding::Derived(_), _) => (PlanOpKind::Derived, node.parents.clone()),
                    (NodeBinding::Param(_), _) => (PlanOpKind::Param, node.parents.clone()),
                    (NodeBinding::Compute, role) => match role {
                        Role::Eager => (PlanOpKind::Eager, node.parents.clone()),
                        Role::Folded => (PlanOpKind::Folded, node.parents.clone()),
                        Role::Erased => (PlanOpKind::Erased, node.parents.clone()),
                        Role::FusedLead { .. } => (PlanOpKind::FusedLead, node.parents.clone()),
                        Role::FusedOut { chain } => (
                            PlanOpKind::FusedOut {
                                stages: self.chains[chain].stages.len(),
                            },
                            {
                                let src = self.chains[chain].src;
                                let mut p = vec![src.0];
                                p.extend(src.1);
                                p
                            },
                        ),
                        Role::Gemm { ta, tb, ua, ub } => (
                            PlanOpKind::Gemm {
                                ta,
                                tb,
                                probe_cached: self.probe_cached[id],
                            },
                            vec![ua, ub],
                        ),
                        Role::ElidedTranspose => {
                            (PlanOpKind::ElidedTranspose, node.parents.clone())
                        }
                    },
                };
                let fused_cost_per_elem = match node.role {
                    Role::FusedOut { chain } => {
                        let c = &self.chains[chain];
                        let lead = match c.kind {
                            ir::LeadKind::Map(m) => m.cost_weight(),
                            _ => 1,
                        };
                        lead + c.stages.iter().map(|m| m.cost_weight()).sum::<u64>()
                    }
                    _ => 0,
                };
                PlanNodeSummary {
                    op: node.op.name(),
                    kind,
                    parents,
                    shape: node.shape.clone(),
                    fused_cost_per_elem,
                }
            })
            .collect();
        PlanSummary {
            nodes,
            report: self.report,
            options: self.options,
        }
    }
}
