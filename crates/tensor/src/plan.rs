// lint: allow-file(L004): the compiler validates every node/parent id against
// the tape once in `Plan::compile`; replay then indexes the per-node slot
// vectors with those proven-in-bounds ids on the hot path.
//! Compiled tape replay: execute one traced graph many times without
//! rebuilding it.
//!
//! STGNN-DJD's tape has a fixed structure for a given station count and
//! window configuration — every training step and every serve forward
//! re-traces the identical graph. Eager mode pays for that by rebuilding
//! every [`crate::autograd::Var`] node per step: `Rc` churn, backward
//! closures, shape clones, and a fresh allocation per op output.
//!
//! [`Plan::compile`] takes one [`TapeSnapshot`] traced by eager mode and
//! turns it into a static schedule: ops in topological (= insertion) order,
//! leaf **bindings** that say how each leaf gets its value on replay
//! (rebound input, recomputed derived value, re-read parameter, or frozen
//! constant), and parameter links for gradient writeback. A [`PlanExec`]
//! holds the per-node value/gradient/mask slots; replaying overwrites the
//! slots in place, so each step's outputs recycle the previous step's
//! buffers through the [`crate::pool`] and the steady state performs **zero
//! pool misses** — the allocator is never touched.
//!
//! Replay is **bit-identical** to eager execution: every op's forward runs
//! the same [`Tensor`] kernel the eager `Var` method runs, and every
//! backward re-applies the exact formula of the eager backward closure, in
//! the same sweep order, accumulating in the same parent order, depositing
//! into [`Param`] cells in the same link order. Dropout nodes resample their
//! mask from the caller's RNG in node order — the same draw order eager
//! tracing uses — so a plan step consumes the RNG stream exactly like the
//! eager step it replaces.
//!
//! One caveat is inherent to replay: ops whose *structure* (not value) was
//! derived from input data at trace time — [`Op::RowsMaxPool`] group lists
//! built from a data-dependent mask — replay the traced structure. Callers
//! that configure such ops from per-input data (the FCG max aggregator)
//! must keep the eager path; input-independent structures (the PCG
//! aggregators, whose groups cover all stations) replay correctly.

use crate::autograd::{Op, Param, ParamSet, TapeSnapshot};
use crate::error::{Error, Result};
use crate::pool::Buffer;
use crate::shape::Shape;
use crate::tensor::Tensor;
use std::collections::HashMap;
use std::rc::Rc;

/// Recomputes a derived leaf's value from earlier node values on each
/// replay. Receives the value slots of all nodes *preceding* the leaf
/// (slice index = node id), so a derived leaf may depend on any upstream
/// forward value — e.g. the flow-conservation mask, which eager mode
/// computes out-of-tape from the fused flow estimates.
pub type DerivedFn = Box<dyn Fn(&[Tensor]) -> Result<Tensor>>;

/// How one leaf node gets its value on each replay.
pub enum LeafBinding {
    /// Rebound from `inputs[i]` on every call (training examples, targets).
    Input(usize),
    /// Recomputed from earlier node values on every call.
    Derived(DerivedFn),
}

/// Caller-supplied compilation spec: which leaves rebind, which roots to
/// read back, and where backward seeds.
#[derive(Default)]
pub struct PlanSpec {
    /// `(leaf node id, binding)` for every leaf that changes between
    /// replays. Leaves not listed stay frozen at their traced value
    /// (constants such as `ones`/`eye`).
    pub bindings: Vec<(usize, LeafBinding)>,
    /// Node ids whose values [`Plan::outputs`] reads back after a forward.
    pub roots: Vec<usize>,
    /// Node id [`Plan::backward`] seeds (the loss). `None` for
    /// inference-only plans.
    pub loss: Option<usize>,
}

enum NodeBinding {
    /// Evaluate the op from parent values.
    Compute,
    /// Keep the traced value (constant leaf).
    Constant,
    /// `inputs[i]`.
    Input(usize),
    /// `derived[i]`.
    Derived(usize),
    /// Re-read the parameter cell.
    Param(Rc<Param>),
}

struct PlanNode {
    op: Op,
    parents: Vec<usize>,
    shape: Shape,
    binding: NodeBinding,
}

/// A compiled, replayable schedule for one traced tape. Cheap to execute,
/// immutable once compiled; per-replay state lives in [`PlanExec`].
pub struct Plan {
    nodes: Vec<PlanNode>,
    derived: Vec<DerivedFn>,
    /// `(node id, param)` in tape order — the deposit order of eager
    /// `backward`.
    param_links: Vec<(usize, Rc<Param>)>,
    init_values: Vec<Tensor>,
    roots: Vec<usize>,
    loss: Option<usize>,
    num_inputs: usize,
    has_dropout: bool,
}

/// Per-replay state of a [`Plan`]: one value slot, gradient slot and
/// dropout-mask slot per node, plus argmax scratch for max-pool backward.
/// Slots are overwritten in place on every replay; their buffers recycle
/// through the [`crate::pool`].
pub struct PlanExec {
    values: Vec<Tensor>,
    grads: Vec<Option<Tensor>>,
    masks: Vec<Option<Tensor>>,
    argmax: Vec<Option<Vec<usize>>>,
}

impl PlanExec {
    /// The forward value of node `id` from the latest replay.
    pub fn value(&self, id: usize) -> Option<&Tensor> {
        self.values.get(id)
    }

    /// The gradient of node `id` from the latest backward, if it was
    /// reached.
    pub fn grad(&self, id: usize) -> Option<&Tensor> {
        self.grads.get(id).and_then(Option::as_ref)
    }
}

impl Plan {
    /// Compiles a traced tape into a replayable plan.
    ///
    /// Validates the tape topology (parents strictly precede children),
    /// resolves every `Param` node against `params` by name, and checks the
    /// spec's bindings point at leaf nodes. Returns
    /// [`Error::InvalidArgument`] on any structural defect.
    pub fn compile(snapshot: &TapeSnapshot, params: &ParamSet, spec: PlanSpec) -> Result<Self> {
        let n = snapshot.nodes.len();
        if n == 0 {
            return Err(Error::InvalidArgument(
                "cannot compile an empty tape".into(),
            ));
        }
        let mut by_name: HashMap<&str, Rc<Param>> = HashMap::new();
        for p in params.params() {
            if by_name.insert(p.name(), Rc::clone(p)).is_some() {
                return Err(Error::InvalidArgument(format!(
                    "duplicate parameter name {:?} — plan compilation resolves params by name",
                    p.name()
                )));
            }
        }

        let mut bindings: HashMap<usize, LeafBinding> = HashMap::new();
        let mut num_inputs = 0usize;
        for (id, b) in spec.bindings {
            if let LeafBinding::Input(i) = &b {
                num_inputs = num_inputs.max(i + 1);
            }
            if bindings.insert(id, b).is_some() {
                return Err(Error::InvalidArgument(format!(
                    "node {id} bound twice in PlanSpec"
                )));
            }
        }

        let mut nodes = Vec::with_capacity(n);
        let mut derived: Vec<DerivedFn> = Vec::new();
        let mut param_links = Vec::new();
        let mut init_values = Vec::with_capacity(n);
        let mut has_dropout = false;
        for (id, info) in snapshot.nodes.iter().enumerate() {
            if info.parents.iter().any(|&p| p >= id) {
                return Err(Error::InvalidArgument(format!(
                    "node {id} has a parent at or after itself — not a valid tape"
                )));
            }
            if info.value.shape() != &info.shape {
                return Err(Error::InvalidArgument(format!(
                    "node {id} recorded shape {} but carries a value of shape {}",
                    info.shape,
                    info.value.shape()
                )));
            }
            let binding = match (&info.op, bindings.remove(&id)) {
                (Op::Leaf, Some(LeafBinding::Input(i))) => NodeBinding::Input(i),
                (Op::Leaf, Some(LeafBinding::Derived(f))) => {
                    derived.push(f);
                    NodeBinding::Derived(derived.len() - 1)
                }
                (Op::Leaf, None) => NodeBinding::Constant,
                (_, Some(_)) => {
                    return Err(Error::InvalidArgument(format!(
                        "PlanSpec binds node {id}, but it is a {} node, not a leaf",
                        info.op
                    )));
                }
                (Op::Param, None) => {
                    let name = info.param.as_deref().ok_or_else(|| {
                        Error::InvalidArgument(format!("param node {id} carries no name"))
                    })?;
                    let p = by_name.get(name).ok_or_else(|| {
                        Error::InvalidArgument(format!(
                            "param node {id} refers to {name:?}, absent from the ParamSet"
                        ))
                    })?;
                    param_links.push((id, Rc::clone(p)));
                    NodeBinding::Param(Rc::clone(p))
                }
                (_, None) => NodeBinding::Compute,
            };
            if matches!(info.op, Op::Dropout { .. }) {
                has_dropout = true;
            }
            nodes.push(PlanNode {
                op: info.op.clone(),
                parents: info.parents.clone(),
                shape: info.shape.clone(),
                binding,
            });
            init_values.push(info.value.clone());
        }
        if let Some((id, _)) = bindings.into_iter().next() {
            return Err(Error::InvalidArgument(format!(
                "PlanSpec binds node {id}, which is outside the tape"
            )));
        }
        for &r in spec.roots.iter().chain(spec.loss.iter()) {
            if r >= n {
                return Err(Error::InvalidArgument(format!(
                    "root node {r} is outside the tape of {n} nodes"
                )));
            }
        }
        Ok(Plan {
            nodes,
            derived,
            param_links,
            init_values,
            roots: spec.roots,
            loss: spec.loss,
            num_inputs,
            has_dropout,
        })
    }

    /// Number of nodes in the compiled schedule.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a plan over an empty tape (cannot be constructed).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of rebindable inputs `forward` expects.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// True when the tape contains dropout nodes and replay therefore needs
    /// the RNG-taking entry points.
    pub fn needs_rng(&self) -> bool {
        self.has_dropout
    }

    /// Allocates the per-replay state for this plan. Slots start at the
    /// traced values (cheap COW clones); the first few replays warm the
    /// buffer pool, after which replay performs zero pool misses.
    pub fn executor(&self) -> PlanExec {
        PlanExec {
            values: self.init_values.clone(),
            grads: vec![None; self.nodes.len()],
            masks: vec![None; self.nodes.len()],
            argmax: vec![None; self.nodes.len()],
        }
    }

    /// Replays the forward pass over `exec`'s slots. Fails if the tape has
    /// dropout nodes — those need [`Plan::forward_with_rng`].
    pub fn forward(&self, exec: &mut PlanExec, inputs: &[Tensor]) -> Result<()> {
        if self.has_dropout {
            return Err(Error::InvalidArgument(
                "tape has dropout nodes; use forward_with_rng".into(),
            ));
        }
        self.forward_impl(exec, inputs, &mut || 0.0)
    }

    /// Replays the forward pass, resampling dropout masks from `rng` in
    /// node order — the same draw order eager tracing uses, so the RNG
    /// stream advances exactly as an eager step would advance it.
    pub fn forward_with_rng(
        &self,
        exec: &mut PlanExec,
        inputs: &[Tensor],
        rng: &mut impl rand::Rng,
    ) -> Result<()> {
        self.forward_impl(exec, inputs, &mut || rng.gen::<f32>())
    }

    fn forward_impl(
        &self,
        exec: &mut PlanExec,
        inputs: &[Tensor],
        draw: &mut dyn FnMut() -> f32,
    ) -> Result<()> {
        // An injected replay fault surfaces as a plan error, which is the
        // signal the trainer and serve paths fall back to eager on.
        stgnn_faults::failpoint!("plan::replay", io);
        if inputs.len() != self.num_inputs {
            return Err(Error::InvalidArgument(format!(
                "plan expects {} inputs, got {}",
                self.num_inputs,
                inputs.len()
            )));
        }
        // Free last step's gradients first so their buffers are back in the
        // pool before this step's takes begin.
        for g in &mut exec.grads {
            *g = None;
        }
        for id in 0..self.nodes.len() {
            let node = &self.nodes[id];
            let v = match &node.binding {
                NodeBinding::Constant => continue,
                NodeBinding::Input(i) => {
                    let t = &inputs[*i];
                    if t.shape() != &node.shape {
                        return Err(Error::InvalidArgument(format!(
                            "input {i} has shape {}, but the tape was traced with {}",
                            t.shape(),
                            node.shape
                        )));
                    }
                    t.clone()
                }
                NodeBinding::Derived(k) => {
                    let t = self.derived[*k](&exec.values[..id])?;
                    if t.shape() != &node.shape {
                        return Err(Error::InvalidArgument(format!(
                            "derived leaf {id} produced shape {}, traced as {}",
                            t.shape(),
                            node.shape
                        )));
                    }
                    t
                }
                NodeBinding::Param(p) => p.value(),
                NodeBinding::Compute => self.eval(id, exec, draw)?,
            };
            exec.values[id] = v;
        }
        Ok(())
    }

    /// The values of the spec's root nodes after a forward.
    pub fn outputs(&self, exec: &PlanExec) -> Vec<Tensor> {
        self.roots.iter().map(|&r| exec.values[r].clone()).collect()
    }

    /// The loss node's scalar value after a forward.
    pub fn loss_value(&self, exec: &PlanExec) -> Result<f32> {
        let id = self
            .loss
            .ok_or_else(|| Error::InvalidArgument("plan has no loss node".into()))?;
        Ok(exec.values[id].scalar())
    }

    /// Replays the backward sweep from the loss node, seeding its gradient
    /// with `seed_scale` — bit-identical to eager `mul_scalar(seed_scale)
    /// .backward()`, whose `ones` seed times the scale is exactly a
    /// `full(seed_scale)` gradient at the loss. Accumulated parameter
    /// gradients are deposited into the linked [`Param`] cells in tape
    /// order, matching the eager deposit order. Call once per forward.
    pub fn backward(&self, exec: &mut PlanExec, seed_scale: f32) -> Result<()> {
        let root = self
            .loss
            .ok_or_else(|| Error::InvalidArgument("plan has no loss node to seed".into()))?;
        accumulate(
            &mut exec.grads[root],
            Tensor::full(self.nodes[root].shape.clone(), seed_scale),
        )?;
        for id in (0..=root).rev() {
            if exec.grads[id].is_none() {
                continue;
            }
            if !matches!(self.nodes[id].binding, NodeBinding::Compute) {
                continue; // leaves, params and constants spread no further
            }
            let contribs = self.backprop(id, exec)?;
            for (pid, g) in contribs {
                debug_assert!(pid < id, "tape order violated: node {id} feeds {pid}");
                accumulate(&mut exec.grads[pid], g)?;
            }
        }
        for (node_id, param) in &self.param_links {
            if let Some(g) = &exec.grads[*node_id] {
                param.accumulate_grad(g);
            }
        }
        Ok(())
    }

    /// Forward + backward + loss read in one call, for single-tape training
    /// steps and tests. Use the split [`Plan::forward_with_rng`] /
    /// [`Plan::backward`] calls when the seed scale depends on several
    /// forwards (the trainer's batch-RMSE scaling).
    pub fn step_with_rng(
        &self,
        exec: &mut PlanExec,
        inputs: &[Tensor],
        seed_scale: f32,
        rng: &mut impl rand::Rng,
    ) -> Result<f32> {
        self.forward_with_rng(exec, inputs, rng)?;
        self.backward(exec, seed_scale)?;
        self.loss_value(exec)
    }

    /// [`Plan::step_with_rng`] for dropout-free tapes.
    pub fn step(&self, exec: &mut PlanExec, inputs: &[Tensor], seed_scale: f32) -> Result<f32> {
        self.forward(exec, inputs)?;
        self.backward(exec, seed_scale)?;
        self.loss_value(exec)
    }

    /// Evaluates one op from its parents' slot values — the identical
    /// kernel call the eager `Var` method makes.
    fn eval(
        &self,
        id: usize,
        exec: &mut PlanExec,
        draw: &mut dyn FnMut() -> f32,
    ) -> Result<Tensor> {
        let node = &self.nodes[id];
        let values = &exec.values;
        let pv = |k: usize| -> &Tensor { &values[node.parents[k]] };
        match &node.op {
            Op::Leaf | Op::Param => Err(Error::InvalidArgument(format!(
                "node {id}: {} nodes are bound, never computed",
                node.op
            ))),
            Op::Add => pv(0).add(pv(1)),
            Op::Sub => pv(0).sub(pv(1)),
            Op::Mul => pv(0).mul(pv(1)),
            Op::Div => pv(0).div(pv(1)),
            Op::AddScalar(s) => Ok(pv(0).add_scalar(*s)),
            Op::MulScalar(s) => Ok(pv(0).mul_scalar(*s)),
            Op::Neg => Ok(pv(0).neg()),
            Op::Matmul => pv(0).matmul(pv(1)),
            Op::Transpose => pv(0).transpose(),
            Op::Reshape(shape) => pv(0).reshape(shape.clone()),
            Op::SliceRows { start, end } => pv(0).slice_rows(*start, *end),
            Op::Relu => Ok(pv(0).relu()),
            Op::Elu => Ok(pv(0).elu()),
            Op::Sigmoid => Ok(pv(0).sigmoid()),
            Op::Tanh => Ok(pv(0).tanh()),
            Op::Exp => Ok(pv(0).exp()),
            Op::Square => Ok(pv(0).square()),
            Op::Abs => Ok(pv(0).abs()),
            Op::Sqrt => Ok(pv(0).sqrt()),
            Op::SoftmaxRows => pv(0).softmax_rows(),
            Op::Dropout { rate } => {
                let keep = 1.0 - rate;
                let x = pv(0);
                let mask = Tensor::filled_with(x.shape().clone(), || {
                    if draw() < keep {
                        1.0 / keep
                    } else {
                        0.0
                    }
                });
                let out = x.mul(&mask)?;
                exec.masks[id] = Some(mask);
                Ok(out)
            }
            Op::AddRowBroadcast => pv(0).add_row_broadcast(pv(1)),
            Op::AddColBroadcast => pv(0).add_col_broadcast(pv(1)),
            Op::MulColBroadcast => pv(0).mul_col_broadcast(pv(1)),
            Op::RowsMaxPool { groups } => {
                let v = pv(0);
                let (rows, cols) = v.shape().as_matrix("rows_max_pool")?;
                let out_rows = groups.len();
                let mut out = Buffer::filled(out_rows * cols, f32::NEG_INFINITY);
                let mut argmax = exec.argmax[id].take().unwrap_or_default();
                argmax.clear();
                argmax.resize(out_rows * cols, 0);
                for (i, group) in groups.iter().enumerate() {
                    for &r in group {
                        if r >= rows {
                            return Err(Error::InvalidArgument(format!(
                                "rows_max_pool: row {r} out of {rows}"
                            )));
                        }
                        for c in 0..cols {
                            let val = v.data()[r * cols + c];
                            if val > out[i * cols + c] {
                                out[i * cols + c] = val;
                                argmax[i * cols + c] = r;
                            }
                        }
                    }
                }
                exec.argmax[id] = Some(argmax);
                Ok(Tensor::from_buffer(Shape::matrix(out_rows, cols), out))
            }
            Op::SumAll => Ok(pv(0).sum_all()),
            Op::MeanAll => Ok(pv(0).mean_all()),
            Op::SumCols => pv(0).sum_cols(),
            Op::SumRows => pv(0).sum_rows(),
            Op::ConcatCols => {
                let parts: Vec<&Tensor> = node.parents.iter().map(|&p| &values[p]).collect();
                Tensor::concat_cols(&parts)
            }
        }
    }

    /// Re-applies the eager backward formula for node `id`, returning the
    /// gradient contribution per parent in parent order.
    fn backprop(&self, id: usize, exec: &PlanExec) -> Result<Vec<(usize, Tensor)>> {
        let node = &self.nodes[id];
        let g = exec.grads[id]
            .as_ref()
            .ok_or_else(|| Error::InvalidArgument(format!("node {id} has no gradient")))?;
        let values = &exec.values;
        let out = &values[id];
        let pid = |k: usize| node.parents[k];
        let pv = |k: usize| -> &Tensor { &values[node.parents[k]] };
        let one = |t: Tensor| -> Result<Vec<(usize, Tensor)>> { Ok(vec![(node.parents[0], t)]) };
        match &node.op {
            Op::Leaf | Op::Param => Ok(Vec::new()),
            Op::Add => Ok(vec![(pid(0), g.clone()), (pid(1), g.clone())]),
            Op::Sub => Ok(vec![(pid(0), g.clone()), (pid(1), g.neg())]),
            Op::Mul => Ok(vec![(pid(0), g.mul(pv(1))?), (pid(1), g.mul(pv(0))?)]),
            Op::Div => {
                let (av, bv) = (pv(0), pv(1));
                let ga = g.div(bv)?;
                // d(a/b)/db = -a / b²  — same composition as the eager closure.
                let gb = g.mul(av)?.div(&bv.square())?.neg();
                Ok(vec![(pid(0), ga), (pid(1), gb)])
            }
            Op::AddScalar(_) => one(g.clone()),
            Op::MulScalar(s) => one(g.mul_scalar(*s)),
            Op::Neg => one(g.neg()),
            Op::Matmul => {
                let (av, bv) = (pv(0), pv(1));
                let ga = g.matmul(&bv.transpose()?)?;
                let gb = av.transpose()?.matmul(g)?;
                Ok(vec![(pid(0), ga), (pid(1), gb)])
            }
            Op::Transpose => one(g.transpose()?),
            Op::Reshape(_) => one(g.reshape(pv(0).shape().clone())?),
            Op::SliceRows { start, end } => {
                let (_, cols) = pv(0).shape().as_matrix("slice_rows_bw")?;
                let mut full = Tensor::zeros(pv(0).shape().clone());
                full.data_mut()[start * cols..end * cols].copy_from_slice(g.data());
                one(full)
            }
            Op::Relu => {
                one(g.zip_map(pv(0), "relu_bw", |gv, xv| if xv > 0.0 { gv } else { 0.0 })?)
            }
            Op::Elu => {
                one(g.zip_map(
                    out,
                    "elu_bw",
                    |gv, ov| {
                        if ov > 0.0 {
                            gv
                        } else {
                            gv * (ov + 1.0)
                        }
                    },
                )?)
            }
            Op::Sigmoid => one(g.zip_map(out, "sigmoid_bw", |gv, sv| gv * sv * (1.0 - sv))?),
            Op::Tanh => one(g.zip_map(out, "tanh_bw", |gv, tv| gv * (1.0 - tv * tv))?),
            Op::Exp => one(g.mul(out)?),
            Op::Square => one(g.zip_map(pv(0), "square_bw", |gv, xv| gv * 2.0 * xv)?),
            Op::Abs => one(g.zip_map(pv(0), "abs_bw", |gv, xv| {
                if xv == 0.0 {
                    0.0
                } else {
                    gv * xv.signum()
                }
            })?),
            Op::Sqrt => one(g.zip_map(out, "sqrt_bw", |gv, sv| gv * 0.5 / sv.max(1e-8))?),
            Op::SoftmaxRows => {
                // dx_j = s_j (g_j − Σ_k g_k s_k), per row — serial, exactly
                // as the eager closure computes it.
                let s = out;
                let (r, c) = s.shape().as_matrix("softmax_bw")?;
                let mut dx = Tensor::zeros(Shape::matrix(r, c));
                let buf = dx.data_mut();
                for i in 0..r {
                    let srow = s.row(i);
                    let grow = g.row(i);
                    let dot: f32 = srow.iter().zip(grow).map(|(&sv, &gv)| sv * gv).sum();
                    for j in 0..c {
                        buf[i * c + j] = srow[j] * (grow[j] - dot);
                    }
                }
                one(dx)
            }
            Op::Dropout { .. } => {
                let mask = exec.masks[id].as_ref().ok_or_else(|| {
                    Error::InvalidArgument(format!(
                        "dropout node {id} has no mask — backward before forward?"
                    ))
                })?;
                one(g.mul(mask)?)
            }
            Op::AddRowBroadcast => Ok(vec![(pid(0), g.clone()), (pid(1), g.sum_rows()?)]),
            Op::AddColBroadcast => Ok(vec![(pid(0), g.clone()), (pid(1), g.sum_cols()?)]),
            Op::MulColBroadcast => {
                let (av, cv) = (pv(0), pv(1));
                let ga = g.mul_col_broadcast(cv)?;
                let gc = g.mul(av)?.sum_cols()?;
                Ok(vec![(pid(0), ga), (pid(1), gc)])
            }
            Op::RowsMaxPool { groups } => {
                let argmax = exec.argmax[id].as_ref().ok_or_else(|| {
                    Error::InvalidArgument(format!(
                        "rows_max_pool node {id} has no argmax — backward before forward?"
                    ))
                })?;
                let (out_rows, cols) = (groups.len(), out.shape().cols());
                let mut dx = Tensor::zeros(pv(0).shape().clone());
                let buf = dx.data_mut();
                for i in 0..out_rows {
                    for c in 0..cols {
                        buf[argmax[i * cols + c] * cols + c] += g.data()[i * cols + c];
                    }
                }
                one(dx)
            }
            Op::SumAll => one(Tensor::full(pv(0).shape().clone(), g.scalar())),
            Op::MeanAll => {
                let shape = pv(0).shape().clone();
                let inv = 1.0 / shape.len() as f32;
                one(Tensor::full(shape, g.scalar() * inv))
            }
            Op::SumCols => {
                let (r, c) = pv(0).shape().as_matrix("sum_cols_bw")?;
                let mut dx = Tensor::zeros(Shape::matrix(r, c));
                let buf = dx.data_mut();
                for i in 0..r {
                    let gv = g.data()[i];
                    buf[i * c..(i + 1) * c].fill(gv);
                }
                one(dx)
            }
            Op::SumRows => {
                let (r, c) = pv(0).shape().as_matrix("sum_rows_bw")?;
                let mut dx = Tensor::zeros(Shape::matrix(r, c));
                let buf = dx.data_mut();
                for i in 0..r {
                    buf[i * c..(i + 1) * c].copy_from_slice(g.data());
                }
                one(dx)
            }
            Op::ConcatCols => {
                let rows = out.shape().rows();
                let mut contribs = Vec::with_capacity(node.parents.len());
                let mut col = 0;
                for &p in &node.parents {
                    let w = values[p].shape().cols();
                    let mut part = Buffer::zeroed(rows * w);
                    for r in 0..rows {
                        let src = &g.row(r)[col..col + w];
                        part[r * w..(r + 1) * w].copy_from_slice(src);
                    }
                    contribs.push((p, Tensor::from_buffer(Shape::matrix(rows, w), part)));
                    col += w;
                }
                Ok(contribs)
            }
        }
    }
}

fn accumulate(slot: &mut Option<Tensor>, g: Tensor) -> Result<()> {
    match slot {
        Some(cur) => *cur = cur.add(&g)?,
        None => *slot = Some(g),
    }
    Ok(())
}
