//! Prints the analyze-layer cost table for the quick-scale training tape
//! plus wall-clock forward/backward splits of the compiled plan — the map
//! used to decide which optimizer pass to spend effort on.
//!
//! ```text
//! cargo run --release -p stgnn-bench --example plan_profile
//! ```

use std::time::Instant;
use stgnn_bench::Scale;
use stgnn_core::model::ModelInputs;
use stgnn_core::StgnnDjd;
use stgnn_data::dataset::{BikeDataset, Split};
use stgnn_data::synthetic::SyntheticCity;
use stgnn_tensor::autograd::Graph;
use stgnn_tensor::par;

fn main() {
    par::init();
    par::set_thread_override(Some(1));
    let scale = Scale::from_env();
    let city = SyntheticCity::generate(scale.chicago_city());
    let data = BikeDataset::from_city(&city, scale.dataset_config()).expect("dataset");
    let config = scale.stgnn_config();
    let model = StgnnDjd::new(config.clone(), data.n_stations()).expect("config");
    let t0 = data.slots(Split::Train)[0];

    // Cost table of the eager training tape.
    let g = Graph::new();
    let inputs = ModelInputs::from_dataset(&data, t0);
    let out = model.forward(&g, &inputs, true);
    let (dt, st) = data.targets_horizon(t0, config.horizon).expect("targets");
    let sq = model.squared_loss(&g, &out, &dt, &st);
    let snapshot = g.snapshot();
    let report = stgnn_analyze::validate_tape(&snapshot, &[sq.id()]);
    println!("{}", report.render());
    let mut by_op = report.by_op.clone();
    by_op.sort_by_key(|r| std::cmp::Reverse(r.flops));
    println!(
        "{:<20} {:>6} {:>12} {:>10}",
        "op", "count", "flops", "bytes"
    );
    for c in by_op.iter().take(12) {
        println!(
            "{:<20} {:>6} {:>12} {:>10}",
            c.op, c.count, c.flops, c.bytes
        );
    }

    // Matmul shape histogram — which sizes the blocked kernels must serve.
    let mut shapes: Vec<(String, usize)> = Vec::new();
    for node in &snapshot.nodes {
        if node.op.name() == "matmul" {
            let l = &snapshot.nodes[node.parents[0]].shape;
            let r = &snapshot.nodes[node.parents[1]].shape;
            let key = format!("{l}x{r}");
            match shapes.iter_mut().find(|(k, _)| *k == key) {
                Some((_, c)) => *c += 1,
                None => shapes.push((key, 1)),
            }
        }
    }
    shapes.sort_by_key(|s| std::cmp::Reverse(s.1));
    println!("matmul shapes:");
    for (s, c) in &shapes {
        println!("  {c:>3} x  {s}");
    }

    // Wall-clock split: plan forward vs backward vs eager fwd/bwd.
    let mut opts = stgnn_tensor::plan::PlanOptions::all();
    opts.fuse = std::env::var("PROFILE_NO_FUSE").is_err();
    let plan = model
        .compile_training_plan_with(&data, t0, opts)
        .expect("compile")
        .expect("compiles");
    println!("\npass report: {}", plan.pass_report());
    let mut exec = plan.executor();
    let iters = 60;
    for _ in 0..3 {
        model.params().zero_grads();
        model
            .plan_step_forward(&plan, &mut exec, &data, t0)
            .unwrap();
        model.plan_step_backward(&plan, &mut exec, 0.5).unwrap();
    }
    let mut fwd = Vec::new();
    let mut bwd = Vec::new();
    let mut efwd = Vec::new();
    let mut ebwd = Vec::new();
    for _ in 0..iters {
        model.params().zero_grads();
        let s = Instant::now();
        model
            .plan_step_forward(&plan, &mut exec, &data, t0)
            .unwrap();
        fwd.push(s.elapsed().as_secs_f64() * 1e3);
        let s = Instant::now();
        model.plan_step_backward(&plan, &mut exec, 0.5).unwrap();
        bwd.push(s.elapsed().as_secs_f64() * 1e3);

        model.params().zero_grads();
        let s = Instant::now();
        let g = Graph::new();
        let inputs = ModelInputs::from_dataset(&data, t0);
        let out = model.forward(&g, &inputs, true);
        let sq = model.squared_loss(&g, &out, &dt, &st);
        efwd.push(s.elapsed().as_secs_f64() * 1e3);
        let s = Instant::now();
        sq.mul_scalar(0.5).backward();
        ebwd.push(s.elapsed().as_secs_f64() * 1e3);
    }
    let med = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    println!(
        "plan  fwd {:.3}ms  bwd {:.3}ms\neager fwd {:.3}ms  bwd {:.3}ms",
        med(&mut fwd),
        med(&mut bwd),
        med(&mut efwd),
        med(&mut ebwd)
    );
    par::set_thread_override(None);
}
