//! Criterion microbenchmarks of the compute kernels under the model:
//! matmul, the autodiff tape round-trip, flow convolution forward,
//! spatial-temporal graph generation, and the `par_*` groups comparing
//! 1-thread vs N-thread kernel-pool dispatch (`STGNN_THREADS` §README).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stgnn_core::config::StgnnConfig;
use stgnn_core::flow_conv::{fcg_mask, FlowConvolution};
use stgnn_graph::aggregate::MeanAggregator;
use stgnn_graph::digraph::DiGraph;
use stgnn_tensor::autograd::{Graph, Param, ParamSet};
use stgnn_tensor::{par, Shape, Tensor};

fn random_matrix(rng: &mut StdRng, r: usize, c: usize) -> Tensor {
    let data: Vec<f32> = (0..r * c).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Tensor::from_vec(Shape::matrix(r, c), data).unwrap()
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = StdRng::seed_from_u64(1);
    for &n in &[32usize, 64, 128] {
        let a = random_matrix(&mut rng, n, n);
        let b = random_matrix(&mut rng, n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b).unwrap()));
        });
    }
    group.finish();
}

fn bench_autodiff_round_trip(c: &mut Criterion) {
    // A 3-layer tanh MLP forward+backward: measures tape overhead beyond
    // the raw matmuls.
    let mut group = c.benchmark_group("autodiff_mlp_fwd_bwd");
    let mut rng = StdRng::seed_from_u64(2);
    for &n in &[32usize, 64] {
        let mut ps = ParamSet::new();
        let w1 = ps.add("w1", random_matrix(&mut rng, n, n));
        let w2 = ps.add("w2", random_matrix(&mut rng, n, n));
        let w3 = ps.add("w3", random_matrix(&mut rng, n, 1));
        let x = random_matrix(&mut rng, n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                ps.zero_grads();
                let g = Graph::new();
                let xv = g.leaf(x.clone());
                let y = xv
                    .matmul(&g.param(&w1))
                    .tanh()
                    .matmul(&g.param(&w2))
                    .tanh()
                    .matmul(&g.param(&w3))
                    .sum_all();
                y.backward();
                black_box(w1.grad());
            });
        });
        let _ = (&w2, &w3);
    }
    group.finish();
}

fn bench_flow_convolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_convolution_forward");
    let mut rng = StdRng::seed_from_u64(3);
    for &(n, k, d) in &[(28usize, 48usize, 3usize), (64, 96, 7)] {
        let config = StgnnConfig {
            k,
            d,
            ..StgnnConfig::paper()
        };
        let mut ps = ParamSet::new();
        let fc = FlowConvolution::new(&mut ps, &mut rng, &config, n);
        let si = random_matrix(&mut rng, k, n * n).relu();
        let so = random_matrix(&mut rng, k, n * n).relu();
        let li = random_matrix(&mut rng, d, n * n).relu();
        let lo = random_matrix(&mut rng, d, n * n).relu();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}_d{d}")),
            &n,
            |bench, _| {
                bench.iter(|| {
                    let g = Graph::new();
                    let out = fc.forward(&g, &si, &so, &li, &lo);
                    black_box(out.t.value());
                });
            },
        );
    }
    group.finish();
}

fn bench_graph_generation(c: &mut Criterion) {
    // FCG mask + edge-weight generation from fused embeddings: the per-slot
    // spatial-temporal graph construction cost.
    let mut group = c.benchmark_group("st_graph_generation");
    let mut rng = StdRng::seed_from_u64(4);
    for &n in &[28usize, 64, 128] {
        let i_hat = random_matrix(&mut rng, n, n).relu();
        let o_hat = random_matrix(&mut rng, n, n).relu();
        let t = random_matrix(&mut rng, n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mask = fcg_mask(&i_hat, &o_hat);
                black_box(stgnn_core::fcg::fcg_edge_weights(&t, &mask));
            });
        });
    }
    group.finish();
}

/// Runs `f` once with the kernel pool pinned to `threads`, restoring the
/// configured default afterwards. Results are bit-identical either way (the
/// chunking is fixed per row, not per thread), so the comparison is purely
/// about wall clock.
fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    par::set_thread_override(Some(threads));
    let out = f();
    par::set_thread_override(None);
    out
}

fn bench_par_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_matmul");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(6);
    let pool = par::init();
    for &n in &[128usize, 512, 1024] {
        let a = random_matrix(&mut rng, n, n);
        let b = random_matrix(&mut rng, n, n);
        for &threads in &[1usize, pool.max(4)] {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("n{n}_t{threads}")),
                &n,
                |bench, _| {
                    bench.iter(|| with_threads(threads, || black_box(a.matmul(&b).unwrap())));
                },
            );
        }
    }
    group.finish();
}

fn bench_par_softmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_softmax_rows");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(7);
    let pool = par::init();
    for &n in &[128usize, 512, 1024] {
        let m = random_matrix(&mut rng, n, n);
        for &threads in &[1usize, pool.max(4)] {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("n{n}_t{threads}")),
                &n,
                |bench, _| {
                    bench.iter(|| with_threads(threads, || black_box(m.softmax_rows().unwrap())));
                },
            );
        }
    }
    group.finish();
}

fn bench_par_transpose(c: &mut Criterion) {
    // The 32×32 cache-blocked transpose: tiles keep both the read stream
    // and the write stream inside L1 instead of striding a whole column
    // per element, and rows of tiles split across the kernel pool.
    let mut group = c.benchmark_group("par_transpose");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(8);
    let pool = par::init();
    for &n in &[128usize, 512, 1024] {
        let m = random_matrix(&mut rng, n, n);
        for &threads in &[1usize, pool.max(4)] {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("n{n}_t{threads}")),
                &n,
                |bench, _| {
                    bench.iter(|| with_threads(threads, || black_box(m.transpose().unwrap())));
                },
            );
        }
    }
    group.finish();
}

fn bench_matmul_density(c: &mut Criterion) {
    // The density probe: matmul samples the lhs and takes a
    // skip-multiplications-by-zero inner loop when it looks sparse.
    // Bench note — on 512×512 with a 90%-zero lhs (the regime of
    // ReLU-masked flow matrices), the sparse path runs ~3–4× faster than
    // the dense path on the same shapes, while an all-dense lhs stays on
    // the dense path and pays only the probe (~1k strided reads, <1% of
    // one matmul). `dense` vs `sparse` below measures exactly that split.
    let mut group = c.benchmark_group("matmul_density_probe");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(9);
    let n = 512usize;
    let rhs = random_matrix(&mut rng, n, n);
    let dense = random_matrix(&mut rng, n, n);
    let sparse_data: Vec<f32> = (0..n * n)
        .map(|_| {
            if rng.gen_range(0.0..1.0f32) < 0.9 {
                0.0
            } else {
                rng.gen_range(-1.0..1.0)
            }
        })
        .collect();
    let sparse = Tensor::from_vec(Shape::matrix(n, n), sparse_data).unwrap();
    group.bench_function("dense", |b| {
        b.iter(|| black_box(dense.matmul(&rhs).unwrap()));
    });
    group.bench_function("sparse", |b| {
        b.iter(|| black_box(sparse.matmul(&rhs).unwrap()));
    });
    group.finish();
}

fn bench_par_aggregate(c: &mut Criterion) {
    // MeanAggregator build: the row-parallel neighbourhood-matrix fill.
    let mut group = c.benchmark_group("par_mean_aggregate");
    group.sample_size(10);
    let pool = par::init();
    for &n in &[128usize, 512, 1024] {
        let edges: Vec<(usize, usize, f32)> = (0..n)
            .flat_map(|i| (0..8usize).map(move |k| (i, (i * 7 + k * 13) % n, 1.0)))
            .collect();
        let graph = DiGraph::from_edges(n, &edges);
        for &threads in &[1usize, pool.max(4)] {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("n{n}_t{threads}")),
                &n,
                |bench, _| {
                    bench.iter(|| with_threads(threads, || black_box(MeanAggregator::new(&graph))));
                },
            );
        }
    }
    group.finish();
}

fn bench_tensor_clone_cow(c: &mut Criterion) {
    // The COW design claim: cloning a big tensor is O(1).
    let mut rng = StdRng::seed_from_u64(5);
    let big = random_matrix(&mut rng, 512, 512);
    c.bench_function("tensor_clone_cow_512x512", |b| {
        b.iter(|| black_box(big.clone()));
    });
    c.bench_function("tensor_deep_copy_512x512", |b| {
        b.iter(|| {
            let mut copy = big.clone();
            copy.data_mut()[0] += 1.0; // forces the actual copy
            black_box(copy);
        });
    });
}

fn bench_param_holder(_c: &mut Criterion) {
    // keep Param import used in all configurations
    let _ = Param::new("unused", Tensor::zeros(Shape::matrix(1, 1)));
}

criterion_group!(
    benches,
    bench_matmul,
    bench_autodiff_round_trip,
    bench_flow_convolution,
    bench_graph_generation,
    bench_par_matmul,
    bench_par_softmax,
    bench_par_transpose,
    bench_matmul_density,
    bench_par_aggregate,
    bench_tensor_clone_cow,
    bench_param_holder,
);
criterion_main!(benches);
