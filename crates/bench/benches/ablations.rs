//! Ablation benchmarks for the implementation design choices called out in
//! DESIGN.md:
//!
//! 1. **Attention decomposition** — the PCG logits via the
//!    `W₉ = [W₉ᵃ; W₉ᵇ]` broadcast (O(n²) after one n×n matmul) versus the
//!    literal Eq 15 pairing that concatenates `[h_i ‖ h_j]` for every pair
//!    (O(n³)). Both produce identical logits; the bench quantifies the win.
//! 2. **Zero-skipping matmul** — the sparse-aware inner loop on realistic
//!    (mostly-zero) flow matrices versus dense random input.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stgnn_tensor::{Shape, Tensor};

fn random_matrix(rng: &mut StdRng, r: usize, c: usize) -> Tensor {
    let data: Vec<f32> = (0..r * c).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Tensor::from_vec(Shape::matrix(r, c), data).unwrap()
}

/// The decomposed attention logits: `s·1ᵀ + 1·dᵀ` after `h = F·W₈`.
fn attention_decomposed(f: &Tensor, w8: &Tensor, w9a: &Tensor, w9b: &Tensor) -> Tensor {
    let h = f.matmul(w8).unwrap();
    let s = h.matmul(w9a).unwrap(); // n×1
    let d = h.matmul(w9b).unwrap(); // n×1
    let n = f.shape().rows();
    let ones_row = Tensor::ones(Shape::matrix(1, n));
    s.matmul(&ones_row)
        .unwrap()
        .add_row_broadcast(&d.transpose().unwrap())
        .unwrap()
        .elu()
}

/// The literal Eq 15: for every pair, concatenate `[h_i ‖ h_j]` and dot
/// with the full `W₉ ∈ R^{2n×1}`.
fn attention_naive(f: &Tensor, w8: &Tensor, w9a: &Tensor, w9b: &Tensor) -> Tensor {
    let h = f.matmul(w8).unwrap();
    let n = f.shape().rows();
    let mut out = Tensor::zeros(Shape::matrix(n, n));
    let buf = out.data_mut();
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0f32;
            for (k, &hv) in h.row(i).iter().enumerate() {
                acc += hv * w9a.data()[k];
            }
            for (k, &hv) in h.row(j).iter().enumerate() {
                acc += hv * w9b.data()[k];
            }
            buf[i * n + j] = if acc > 0.0 { acc } else { acc.exp_m1() };
        }
    }
    out
}

fn bench_attention_decomposition(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut group = c.benchmark_group("pcg_attention_logits");
    for &n in &[32usize, 64, 128] {
        let f = random_matrix(&mut rng, n, n);
        let w8 = random_matrix(&mut rng, n, n);
        let w9a = random_matrix(&mut rng, n, 1);
        let w9b = random_matrix(&mut rng, n, 1);
        // Correctness guard: both paths agree before we time them.
        let a = attention_decomposed(&f, &w8, &w9a, &w9b);
        let b = attention_naive(&f, &w8, &w9a, &w9b);
        assert!(a.approx_eq(&b, 1e-2), "decomposition diverged from Eq 15");
        group.bench_with_input(BenchmarkId::new("decomposed", n), &n, |bench, _| {
            bench.iter(|| black_box(attention_decomposed(&f, &w8, &w9a, &w9b)));
        });
        group.bench_with_input(BenchmarkId::new("naive_pairwise", n), &n, |bench, _| {
            bench.iter(|| black_box(attention_naive(&f, &w8, &w9a, &w9b)));
        });
    }
    group.finish();
}

fn bench_sparse_aware_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(13);
    let n = 96;
    let dense = random_matrix(&mut rng, n, n);
    // Realistic flow matrix: ~5% of station pairs exchange bikes in a slot.
    let sparse_data: Vec<f32> = (0..n * n)
        .map(|_| {
            if rng.gen::<f32>() < 0.05 {
                rng.gen_range(1.0..4.0)
            } else {
                0.0
            }
        })
        .collect();
    let sparse = Tensor::from_vec(Shape::matrix(n, n), sparse_data).unwrap();
    let rhs = random_matrix(&mut rng, n, n);

    let mut group = c.benchmark_group("matmul_zero_skip");
    group.bench_function("dense_lhs", |b| {
        b.iter(|| black_box(dense.matmul(&rhs).unwrap()))
    });
    group.bench_function("sparse_flow_lhs", |b| {
        b.iter(|| black_box(sparse.matmul(&rhs).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_attention_decomposition,
    bench_sparse_aware_matmul
);
criterion_main!(benches);
