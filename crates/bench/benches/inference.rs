//! §VII-I as a criterion benchmark: full-model single-slot prediction
//! latency (all stations at once), on an *untrained* model — inference cost
//! does not depend on the weights, so no training is needed to measure it.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stgnn_bench::{ExperimentContext, Scale};
use stgnn_core::model::ModelInputs;
use stgnn_core::StgnnDjd;
use stgnn_data::Split;
use stgnn_tensor::autograd::Graph;

fn bench_inference(c: &mut Criterion) {
    let ctx = ExperimentContext::new(Scale::Quick).expect("context");
    let mut group = c.benchmark_group("predict_one_slot_all_stations");
    group.sample_size(20);
    for (name, data) in ctx.datasets() {
        let model = StgnnDjd::new(ctx.scale.stgnn_config(), data.n_stations()).expect("config");
        let t = data.slots(Split::Test)[0];
        group.bench_with_input(BenchmarkId::from_parameter(name), &t, |b, &t| {
            b.iter(|| {
                let g = Graph::new();
                let inputs = ModelInputs::from_dataset(data, t);
                let out = model.forward(&g, &inputs, false);
                black_box((out.demand.value(), out.supply.value()));
            });
        });
    }
    group.finish();
}

fn bench_input_assembly(c: &mut Criterion) {
    // How much of the per-slot latency is just copying the window stacks.
    let ctx = ExperimentContext::new(Scale::Quick).expect("context");
    let mut group = c.benchmark_group("input_window_assembly");
    for (name, data) in ctx.datasets() {
        let t = data.slots(Split::Test)[0];
        group.bench_with_input(BenchmarkId::from_parameter(name), &t, |b, &t| {
            b.iter(|| black_box(ModelInputs::from_dataset(data, t)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference, bench_input_assembly);
criterion_main!(benches);
