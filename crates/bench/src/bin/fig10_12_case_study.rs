//! Figures 10–12 — the §VIII dependency case study.
//!
//! * **Figure 10**: the "existing approach" (GBike-style locality prior):
//!   dependency on the 10 nearest stations is monotone in distance and
//!   constant over time.
//! * **Figures 11–12**: STGNN-DJD's PCG attention for the same station over
//!   the morning (07:00–10:00) and afternoon (15:00–18:00) windows, in both
//!   directions. The claims to reproduce: dependency varies over time,
//!   varies across pairs at one time, and is *not* monotone in distance.
//!
//! ```text
//! cargo run -p stgnn-bench --release --bin fig10_12_case_study
//! ```

use stgnn_baselines::gbike::locality_dependency;
use stgnn_bench::{ExperimentContext, Scale};
use stgnn_core::attention::dependency_vs_nearest;
use stgnn_core::StgnnDjd;
use stgnn_data::predictor::DemandSupplyPredictor;
use stgnn_data::Split;

const NEAREST: usize = 10;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[case-study] building synthetic cities at {scale:?} scale…");
    let ctx = ExperimentContext::new(scale).expect("context");
    let data = &ctx.chicago;

    // Target: the first school station, mirroring the paper's choice of a
    // busy mixed-use station (Wabash Ave & Grand Ave).
    let target = 0usize;

    // ---- Figure 10: the locality prior of the existing approach. ----
    let prior = locality_dependency(data.registry(), target, NEAREST);
    println!("\n== Figure 10: existing approach (distance prior), station {target} ==");
    println!("nearest-station dependency, identical at every slot:");
    let cells: Vec<String> = prior.iter().map(|v| format!("{v:.3}")).collect();
    println!("  [{}]", cells.join(", "));
    let monotone = prior.windows(2).all(|w| w[0] >= w[1] - 1e-6);
    println!("  monotone in distance: {monotone} (by construction)");

    // ---- Figures 11–12: STGNN-DJD's learned, dynamic dependency. ----
    eprintln!("[case-study] training STGNN-DJD…");
    let mut model = StgnnDjd::new(scale.stgnn_config(), data.n_stations()).expect("valid config");
    model.fit(data).expect("training");

    let spd = data.slots_per_day();
    let window = |lo_h: usize, hi_h: usize| -> Vec<usize> {
        let lo = lo_h * spd / 24;
        let hi = hi_h * spd / 24;
        data.slots(Split::Test)
            .into_iter()
            .filter(|&t| {
                let tod = data.flows().tod_of_slot(t);
                (lo..hi).contains(&tod)
            })
            .take(12)
            .collect()
    };

    let mut csv = String::from("figure,direction,slot,neighbor_rank,distance_km,attention\n");
    for (fig, lo, hi) in [
        ("Figure 11 (07:00-10:00)", 7, 10),
        ("Figure 12 (15:00-18:00)", 15, 18),
    ] {
        let slots = window(lo, hi);
        let dep = dependency_vs_nearest(&model, data, target, NEAREST, &slots).expect("attention");
        println!("\n== {fig}: STGNN-DJD PCG attention, station {target} ==");
        println!("(a) dependency FROM the target TO its {NEAREST} nearest stations:");
        print!("{}", dep.ascii_heatmap(true));
        println!("(b) dependency FROM the {NEAREST} nearest stations TO the target:");
        print!("{}", dep.ascii_heatmap(false));
        println!(
            "locality violated (a farther station out-scores the nearest): {}",
            dep.violates_locality()
        );
        for (dir, grid) in [("from", &dep.from_target), ("to", &dep.to_target)] {
            for (si, row) in grid.iter().enumerate() {
                for (ni, v) in row.iter().enumerate() {
                    csv.push_str(&format!(
                        "{fig},{dir},{},{},{:.3},{v:.6}\n",
                        dep.slots[si], ni, dep.distances_km[ni]
                    ));
                }
            }
        }
    }

    std::fs::create_dir_all("results").ok();
    if stgnn_faults::fsio::atomic_write("results/fig10_12_case_study.csv", |w| {
        w.write_all(csv.as_bytes())
    })
    .is_ok()
    {
        println!("\nwrote results/fig10_12_case_study.csv");
    }
}
