// sound: allow-file(S004, S005): BENCH-LATENCY-IS-WALLCLOCK — these
// benchmarks measure wall-clock latency; timing flowing into the emitted
// JSON is the entire point, not a determinism leak.
//! Steady-state memory-plane benchmark: eager tape re-tracing vs compiled
//! plan replay, for the training step and the serve forward.
//!
//! Emits `BENCH_steady_state.json` (train-step time, serve p50/p99, pool
//! hit rate, allocations/step, and the plan-over-eager speedup) at
//! `STGNN_THREADS` ∈ {1, N} — the baseline later PRs must beat.
//!
//! ```text
//! cargo run -p stgnn-bench --release --bin steady_state
//! STGNN_BENCH_SMOKE=1 cargo run -p stgnn-bench --release --bin steady_state   # CI smoke
//! ```
//!
//! Smoke mode shrinks the iteration counts (not the model) so CI exercises
//! the full measurement path in seconds; the JSON schema is identical.

use std::time::Instant;
use stgnn_bench::{Scale, TableWriter};
use stgnn_core::model::ModelInputs;
use stgnn_core::{StgnnConfig, StgnnDjd};
use stgnn_data::dataset::{BikeDataset, Split};
use stgnn_data::synthetic::SyntheticCity;
use stgnn_tensor::autograd::Graph;
use stgnn_tensor::plan::PlanOptions;
use stgnn_tensor::{par, pool};

/// Measurements for one (path, thread-count) cell.
struct Cell {
    threads: usize,
    train_step_eager_ms: f64,
    train_step_plan_ms: f64,
    serve_eager_p50_ms: f64,
    serve_eager_p99_ms: f64,
    serve_plan_p50_ms: f64,
    serve_plan_p99_ms: f64,
    pool_hit_rate: f64,
    allocs_per_step: f64,
}

impl Cell {
    fn train_speedup(&self) -> f64 {
        self.train_step_eager_ms / self.train_step_plan_ms.max(1e-9)
    }

    fn serve_speedup(&self) -> f64 {
        self.serve_eager_p50_ms / self.serve_plan_p50_ms.max(1e-9)
    }
}

/// One timing for a plan compiled with a single optimizer pass (or none, or
/// all) — the ablation row quantifying what each pass buys on its own.
struct AblationCell {
    passes: &'static str,
    train_step_ms: f64,
    speedup_vs_eager: f64,
    pass_report: String,
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 * q) as usize).min(sorted_ms.len() - 1);
    sorted_ms[idx]
}

/// Median of unsorted per-iteration samples. The bench interleaves eager
/// and plan iterations and reports medians, so a scheduler stall during
/// the run hits both paths alike and cancels out of the speedup ratio —
/// a mean over a dedicated section charges the whole stall to one path.
fn median_ms(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    percentile(&sorted, 0.50)
}

/// Renders a float for JSON at the given precision, mapping non-finite
/// values to `null` — `format!("{:.3}", f64::INFINITY)` prints `inf`,
/// which is not JSON, and a zero-duration denominator can produce it.
fn jnum(v: f64, precision: usize) -> String {
    if v.is_finite() {
        format!("{v:.precision$}")
    } else {
        "null".to_string()
    }
}

/// The ablation ladder: no passes, each pass alone, every pass together.
fn ablation_variants() -> [(&'static str, PlanOptions); 7] {
    [
        ("none", PlanOptions::none()),
        (
            "fold_constants",
            PlanOptions {
                fold_constants: true,
                ..PlanOptions::none()
            },
        ),
        (
            "elide_transposes",
            PlanOptions {
                elide_transposes: true,
                ..PlanOptions::none()
            },
        ),
        (
            "fuse",
            PlanOptions {
                fuse: true,
                ..PlanOptions::none()
            },
        ),
        (
            "in_place",
            PlanOptions {
                in_place: true,
                ..PlanOptions::none()
            },
        ),
        (
            "cache_probes",
            PlanOptions {
                cache_probes: true,
                ..PlanOptions::none()
            },
        ),
        ("all", PlanOptions::all()),
    ]
}

/// Times the training step once per optimizer-pass variant against a shared
/// eager baseline, all at `threads` kernel threads.
fn measure_ablation(
    data: &BikeDataset,
    config: &StgnnConfig,
    threads: usize,
    train_iters: usize,
) -> Vec<AblationCell> {
    par::set_thread_override(Some(threads));
    let model = StgnnDjd::new(config.clone(), data.n_stations()).expect("config");
    let train_slots: Vec<usize> = data.slots(Split::Train);
    let probe = train_slots[0];
    let horizon = config.horizon;
    let grad_scale = 0.5f32;

    let eager_step = |t: usize| {
        model.params().zero_grads();
        let g = Graph::new();
        let inputs = ModelInputs::from_dataset(data, t);
        let out = model.forward(&g, &inputs, true);
        let (dt, st) = data.targets_horizon(t, horizon).expect("targets");
        let sq = model.squared_loss(&g, &out, &dt, &st);
        sq.mul_scalar(grad_scale).backward();
    };

    // One compiled plan + persistent executor per variant, measured
    // round-robin against the eager step within every iteration so all
    // eight timings share the same noise environment (see `median_ms`).
    let variants = ablation_variants();
    let plans: Vec<_> = variants
        .iter()
        .map(|(_, opts)| {
            model
                .compile_training_plan_with(data, probe, *opts)
                .expect("compile")
                .expect("standard config compiles")
        })
        .collect();
    let mut execs: Vec<_> = plans.iter().map(|p| p.executor()).collect();
    let plan_step = |plan: &stgnn_core::compiled::TrainingPlan,
                     exec: &mut stgnn_tensor::plan::PlanExec,
                     t: usize| {
        model.params().zero_grads();
        model
            .plan_step_forward(plan, exec, data, t)
            .expect("plan forward");
        model
            .plan_step_backward(plan, exec, grad_scale)
            .expect("plan backward");
    };
    for &t in train_slots.iter().cycle().take(3) {
        eager_step(t);
        for (plan, exec) in plans.iter().zip(execs.iter_mut()) {
            plan_step(plan, exec, t);
        }
    }
    let mut eager_tr: Vec<f64> = Vec::with_capacity(train_iters);
    let mut variant_tr: Vec<Vec<f64>> = vec![Vec::with_capacity(train_iters); variants.len()];
    for &t in train_slots.iter().cycle().take(train_iters) {
        let s = Instant::now();
        eager_step(t);
        eager_tr.push(s.elapsed().as_secs_f64() * 1e3);
        for (v, (plan, exec)) in plans.iter().zip(execs.iter_mut()).enumerate() {
            let s = Instant::now();
            plan_step(plan, exec, t);
            variant_tr[v].push(s.elapsed().as_secs_f64() * 1e3);
        }
    }
    let eager_ms = median_ms(&eager_tr);
    let cells = variants
        .iter()
        .zip(&plans)
        .zip(&variant_tr)
        .map(|(((passes, _), plan), samples)| {
            let train_step_ms = median_ms(samples);
            AblationCell {
                passes,
                train_step_ms,
                speedup_vs_eager: eager_ms / train_step_ms.max(1e-9),
                pass_report: plan.pass_report().to_string(),
            }
        })
        .collect();
    par::set_thread_override(None);
    cells
}

/// One full measurement pass with the kernel pool pinned to `threads`.
fn measure(
    data: &BikeDataset,
    config: &StgnnConfig,
    threads: usize,
    train_iters: usize,
    serve_iters: usize,
) -> Cell {
    par::set_thread_override(Some(threads));
    let model = StgnnDjd::new(config.clone(), data.n_stations()).expect("config");
    let horizon = config.horizon;
    let train_slots: Vec<usize> = data.slots(Split::Train);
    let test_slots: Vec<usize> = data.slots(Split::Test);
    let probe = train_slots[0];
    // The trainer's per-slot gradient seed for a batch of 1 at unit loss —
    // the value itself is irrelevant to timing, it just has to flow.
    let grad_scale = 0.5f32;

    // -- Training step: eager re-trace vs plan replay, interleaved --------
    let eager_step = |t: usize| {
        model.params().zero_grads();
        let g = Graph::new();
        let inputs = ModelInputs::from_dataset(data, t);
        let out = model.forward(&g, &inputs, true);
        let (dt, st) = data.targets_horizon(t, horizon).expect("targets");
        let sq = model.squared_loss(&g, &out, &dt, &st);
        sq.mul_scalar(grad_scale).backward();
    };
    let plan = model
        .compile_training_plan(data, probe)
        .expect("compile")
        .expect("standard config compiles");
    let mut exec = plan.executor();
    let plan_step = |exec: &mut stgnn_tensor::plan::PlanExec, t: usize| {
        model.params().zero_grads();
        model
            .plan_step_forward(&plan, exec, data, t)
            .expect("plan forward");
        model
            .plan_step_backward(&plan, exec, grad_scale)
            .expect("plan backward");
    };
    for &t in train_slots.iter().cycle().take(3) {
        eager_step(t); // warm the kernel pool and the page cache
        plan_step(&mut exec, t); // warm-up: populates every pooled slot
    }
    let mut eager_tr: Vec<f64> = Vec::with_capacity(train_iters);
    let mut plan_tr: Vec<f64> = Vec::with_capacity(train_iters);
    let (mut plan_hits, mut plan_misses) = (0u64, 0u64);
    for &t in train_slots.iter().cycle().take(train_iters) {
        let s = Instant::now();
        eager_step(t);
        eager_tr.push(s.elapsed().as_secs_f64() * 1e3);
        let before = pool::stats();
        let s = Instant::now();
        plan_step(&mut exec, t);
        plan_tr.push(s.elapsed().as_secs_f64() * 1e3);
        let d = pool::stats().since(&before);
        plan_hits += d.hits;
        plan_misses += d.misses;
    }
    let train_step_eager_ms = median_ms(&eager_tr);
    let train_step_plan_ms = median_ms(&plan_tr);
    let allocs_per_step = plan_misses as f64 / train_iters as f64;
    let pool_hit_rate = {
        let total = plan_hits + plan_misses;
        if total == 0 {
            0.0
        } else {
            plan_hits as f64 / total as f64
        }
    };

    // -- Serve forward: eager vs plan, interleaved (the worker's calls) ---
    let inf_plan = model
        .compile_inference_plan(data, test_slots[0])
        .expect("compile")
        .expect("standard config compiles");
    let mut inf_exec = inf_plan.executor();
    let _ = model.predict_horizon(data, test_slots[0]);
    let _ = model.plan_predict_horizon(&inf_plan, &mut inf_exec, data, test_slots[0]);
    let mut eager_ms: Vec<f64> = Vec::with_capacity(serve_iters);
    let mut plan_ms: Vec<f64> = Vec::with_capacity(serve_iters);
    for &t in test_slots.iter().cycle().take(serve_iters) {
        let s = Instant::now();
        let _ = model.predict_horizon(data, t);
        eager_ms.push(s.elapsed().as_secs_f64() * 1e3);
        let s = Instant::now();
        let _ = model
            .plan_predict_horizon(&inf_plan, &mut inf_exec, data, t)
            .expect("plan predict");
        plan_ms.push(s.elapsed().as_secs_f64() * 1e3);
    }
    eager_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    plan_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    par::set_thread_override(None);
    Cell {
        threads,
        train_step_eager_ms,
        train_step_plan_ms,
        serve_eager_p50_ms: percentile(&eager_ms, 0.50),
        serve_eager_p99_ms: percentile(&eager_ms, 0.99),
        serve_plan_p50_ms: percentile(&plan_ms, 0.50),
        serve_plan_p99_ms: percentile(&plan_ms, 0.99),
        pool_hit_rate,
        allocs_per_step,
    }
}

fn json_cell(c: &Cell) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"threads\": {},\n",
            "      \"train_step_eager_ms\": {},\n",
            "      \"train_step_plan_ms\": {},\n",
            "      \"train_speedup\": {},\n",
            "      \"serve_eager_p50_ms\": {},\n",
            "      \"serve_eager_p99_ms\": {},\n",
            "      \"serve_plan_p50_ms\": {},\n",
            "      \"serve_plan_p99_ms\": {},\n",
            "      \"serve_speedup\": {},\n",
            "      \"pool_hit_rate\": {},\n",
            "      \"allocs_per_step\": {}\n",
            "    }}"
        ),
        c.threads,
        jnum(c.train_step_eager_ms, 4),
        jnum(c.train_step_plan_ms, 4),
        jnum(c.train_speedup(), 3),
        jnum(c.serve_eager_p50_ms, 4),
        jnum(c.serve_eager_p99_ms, 4),
        jnum(c.serve_plan_p50_ms, 4),
        jnum(c.serve_plan_p99_ms, 4),
        jnum(c.serve_speedup(), 3),
        jnum(c.pool_hit_rate, 6),
        jnum(c.allocs_per_step, 4),
    )
}

fn json_ablation(a: &AblationCell) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"passes\": \"{}\",\n",
            "      \"train_step_ms\": {},\n",
            "      \"speedup_vs_eager\": {},\n",
            "      \"pass_report\": \"{}\"\n",
            "    }}"
        ),
        a.passes,
        jnum(a.train_step_ms, 4),
        jnum(a.speedup_vs_eager, 3),
        a.pass_report,
    )
}

fn main() {
    let smoke = std::env::var("STGNN_BENCH_SMOKE").is_ok();
    let (train_iters, serve_iters) = if smoke { (6, 16) } else { (40, 200) };
    let scale = Scale::from_env();
    let pool_threads = par::init();
    eprintln!(
        "[steady_state] {scale:?} scale, {} mode, kernel pool = {pool_threads} threads",
        if smoke { "smoke" } else { "full" }
    );

    let city = SyntheticCity::generate(scale.chicago_city());
    let data = BikeDataset::from_city(&city, scale.dataset_config()).expect("dataset");
    let config = scale.stgnn_config();

    let mut table = TableWriter::new(
        "Steady state: eager re-trace vs compiled plan replay",
        &[
            "Threads",
            "Train eager (ms)",
            "Train plan (ms)",
            "Speedup",
            "Serve p50/p99 (ms)",
            "Pool hit rate",
            "Allocs/step",
        ],
    );
    // Measure serial, then at the pool's native width — but never wider
    // than the hardware: pinning 2 kernel threads onto 1 core measures the
    // scheduler's context-switch cost, not the kernels.
    let mut thread_counts = vec![1usize];
    if pool_threads > 1 {
        thread_counts.push(pool_threads);
    }
    let mut cells = Vec::new();
    for &threads in &thread_counts {
        eprintln!("[steady_state] measuring at {threads} thread(s)…");
        let cell = measure(&data, &config, threads, train_iters, serve_iters);
        table.row(&[
            cell.threads.to_string(),
            format!("{:.3}", cell.train_step_eager_ms),
            format!("{:.3}", cell.train_step_plan_ms),
            format!("{:.2}x", cell.train_speedup()),
            format!(
                "{:.3}/{:.3}",
                cell.serve_plan_p50_ms, cell.serve_plan_p99_ms
            ),
            format!("{:.4}", cell.pool_hit_rate),
            format!("{:.2}", cell.allocs_per_step),
        ]);
        cells.push(cell);
    }
    table.finish("steady_state");

    eprintln!("[steady_state] measuring per-pass ablation…");
    let ablation = measure_ablation(&data, &config, pool_threads, train_iters);
    let mut atab = TableWriter::new(
        "Per-pass ablation: train step vs eager",
        &["Passes", "Train (ms)", "Speedup", "Pass report"],
    );
    for a in &ablation {
        atab.row(&[
            a.passes.to_string(),
            format!("{:.3}", a.train_step_ms),
            format!("{:.2}x", a.speedup_vs_eager),
            a.pass_report.clone(),
        ]);
    }
    atab.finish("steady_state_ablation");

    let body = format!(
        "{{\n  \"benchmark\": \"steady_state\",\n  \"scale\": \"{:?}\",\n  \"smoke\": {},\n  \"train_iters\": {},\n  \"serve_iters\": {},\n  \"cells\": [\n{}\n  ],\n  \"ablation\": [\n{}\n  ]\n}}\n",
        scale,
        smoke,
        train_iters,
        serve_iters,
        cells.iter().map(json_cell).collect::<Vec<_>>().join(",\n"),
        ablation
            .iter()
            .map(json_ablation)
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    // Atomic: the driver diffs this file across runs, so a crashed bench
    // must never leave a truncated JSON behind.
    match stgnn_faults::fsio::atomic_write("BENCH_steady_state.json", |w| {
        w.write_all(body.as_bytes())
    }) {
        Ok(()) => eprintln!("[steady_state] wrote BENCH_steady_state.json"),
        Err(e) => eprintln!("[steady_state] could not write BENCH_steady_state.json: {e}"),
    }
    println!(
        "Replay reuses every intermediate buffer through the tensor pool; after warm-up the\n\
         training step and the serve forward run with zero pool misses (Allocs/step above)."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_of_empty_vector_is_zero_not_a_panic() {
        assert_eq!(percentile(&[], 0.50), 0.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
    }

    #[test]
    fn percentile_clamps_to_last_element() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&v, 0.99), 3.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
    }

    #[test]
    fn jnum_clamps_non_finite_to_null() {
        assert_eq!(jnum(f64::INFINITY, 3), "null");
        assert_eq!(jnum(f64::NEG_INFINITY, 4), "null");
        assert_eq!(jnum(f64::NAN, 3), "null");
        assert_eq!(jnum(1.25, 3), "1.250");
    }

    #[test]
    fn json_cell_with_zero_plan_time_stays_valid_json() {
        // A zero-duration plan denominator must not leak `inf` into the
        // report (speedup divides by `.max(1e-9)`, so the number is huge
        // but finite; the non-finite inputs below are clamped to null).
        let c = Cell {
            threads: 1,
            train_step_eager_ms: f64::INFINITY,
            train_step_plan_ms: 0.0,
            serve_eager_p50_ms: f64::NAN,
            serve_eager_p99_ms: 0.0,
            serve_plan_p50_ms: 0.0,
            serve_plan_p99_ms: 0.0,
            pool_hit_rate: 1.0,
            allocs_per_step: 0.0,
        };
        let s = json_cell(&c);
        assert!(!s.contains("inf"), "{s}");
        assert!(!s.contains("NaN"), "{s}");
        assert!(s.contains("\"train_step_eager_ms\": null"), "{s}");
        assert!(s.contains("\"serve_eager_p50_ms\": null"), "{s}");
    }
}
