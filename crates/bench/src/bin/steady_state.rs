//! Steady-state memory-plane benchmark: eager tape re-tracing vs compiled
//! plan replay, for the training step and the serve forward.
//!
//! Emits `BENCH_steady_state.json` (train-step time, serve p50/p99, pool
//! hit rate, allocations/step, and the plan-over-eager speedup) at
//! `STGNN_THREADS` ∈ {1, N} — the baseline later PRs must beat.
//!
//! ```text
//! cargo run -p stgnn-bench --release --bin steady_state
//! STGNN_BENCH_SMOKE=1 cargo run -p stgnn-bench --release --bin steady_state   # CI smoke
//! ```
//!
//! Smoke mode shrinks the iteration counts (not the model) so CI exercises
//! the full measurement path in seconds; the JSON schema is identical.

use std::time::Instant;
use stgnn_bench::{Scale, TableWriter};
use stgnn_core::model::ModelInputs;
use stgnn_core::{StgnnConfig, StgnnDjd};
use stgnn_data::dataset::{BikeDataset, Split};
use stgnn_data::synthetic::SyntheticCity;
use stgnn_tensor::autograd::Graph;
use stgnn_tensor::{par, pool};

/// Measurements for one (path, thread-count) cell.
struct Cell {
    threads: usize,
    train_step_eager_ms: f64,
    train_step_plan_ms: f64,
    serve_eager_p50_ms: f64,
    serve_eager_p99_ms: f64,
    serve_plan_p50_ms: f64,
    serve_plan_p99_ms: f64,
    pool_hit_rate: f64,
    allocs_per_step: f64,
}

impl Cell {
    fn train_speedup(&self) -> f64 {
        self.train_step_eager_ms / self.train_step_plan_ms.max(1e-9)
    }

    fn serve_speedup(&self) -> f64 {
        self.serve_eager_p50_ms / self.serve_plan_p50_ms.max(1e-9)
    }
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 * q) as usize).min(sorted_ms.len() - 1);
    sorted_ms[idx]
}

/// One full measurement pass with the kernel pool pinned to `threads`.
fn measure(
    data: &BikeDataset,
    config: &StgnnConfig,
    threads: usize,
    train_iters: usize,
    serve_iters: usize,
) -> Cell {
    par::set_thread_override(Some(threads));
    let model = StgnnDjd::new(config.clone(), data.n_stations()).expect("config");
    let horizon = config.horizon;
    let train_slots: Vec<usize> = data.slots(Split::Train);
    let test_slots: Vec<usize> = data.slots(Split::Test);
    let probe = train_slots[0];
    // The trainer's per-slot gradient seed for a batch of 1 at unit loss —
    // the value itself is irrelevant to timing, it just has to flow.
    let grad_scale = 0.5f32;

    // -- Training step: eager re-trace ------------------------------------
    let eager_step = |t: usize| {
        model.params().zero_grads();
        let g = Graph::new();
        let inputs = ModelInputs::from_dataset(data, t);
        let out = model.forward(&g, &inputs, true);
        let (dt, st) = data.targets_horizon(t, horizon).expect("targets");
        let sq = model.squared_loss(&g, &out, &dt, &st);
        sq.mul_scalar(grad_scale).backward();
    };
    for &t in train_slots.iter().cycle().take(3) {
        eager_step(t); // warm the kernel pool and the page cache
    }
    let t0 = Instant::now();
    for &t in train_slots.iter().cycle().take(train_iters) {
        eager_step(t);
    }
    let train_step_eager_ms = t0.elapsed().as_secs_f64() * 1e3 / train_iters as f64;

    // -- Training step: compiled plan replay ------------------------------
    let plan = model
        .compile_training_plan(data, probe)
        .expect("compile")
        .expect("standard config compiles");
    let mut exec = plan.executor();
    let plan_step = |exec: &mut stgnn_tensor::plan::PlanExec, t: usize| {
        model.params().zero_grads();
        model
            .plan_step_forward(&plan, exec, data, t)
            .expect("plan forward");
        model
            .plan_step_backward(&plan, exec, grad_scale)
            .expect("plan backward");
    };
    for &t in train_slots.iter().cycle().take(3) {
        plan_step(&mut exec, t); // warm-up: populates every pooled slot
    }
    let pool_before = pool::stats();
    let t1 = Instant::now();
    for &t in train_slots.iter().cycle().take(train_iters) {
        plan_step(&mut exec, t);
    }
    let train_step_plan_ms = t1.elapsed().as_secs_f64() * 1e3 / train_iters as f64;
    let pool_delta = pool::stats().since(&pool_before);
    let allocs_per_step = pool_delta.misses as f64 / train_iters as f64;
    let pool_hit_rate = pool_delta.hit_rate();

    // -- Serve forward: eager vs plan (the worker's exact calls) ----------
    let mut eager_ms: Vec<f64> = Vec::with_capacity(serve_iters);
    let _ = model.predict_horizon(data, test_slots[0]);
    for &t in test_slots.iter().cycle().take(serve_iters) {
        let s = Instant::now();
        let _ = model.predict_horizon(data, t);
        eager_ms.push(s.elapsed().as_secs_f64() * 1e3);
    }
    let inf_plan = model
        .compile_inference_plan(data, test_slots[0])
        .expect("compile")
        .expect("standard config compiles");
    let mut inf_exec = inf_plan.executor();
    let mut plan_ms: Vec<f64> = Vec::with_capacity(serve_iters);
    let _ = model.plan_predict_horizon(&inf_plan, &mut inf_exec, data, test_slots[0]);
    for &t in test_slots.iter().cycle().take(serve_iters) {
        let s = Instant::now();
        let _ = model
            .plan_predict_horizon(&inf_plan, &mut inf_exec, data, t)
            .expect("plan predict");
        plan_ms.push(s.elapsed().as_secs_f64() * 1e3);
    }
    eager_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    plan_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    par::set_thread_override(None);
    Cell {
        threads,
        train_step_eager_ms,
        train_step_plan_ms,
        serve_eager_p50_ms: percentile(&eager_ms, 0.50),
        serve_eager_p99_ms: percentile(&eager_ms, 0.99),
        serve_plan_p50_ms: percentile(&plan_ms, 0.50),
        serve_plan_p99_ms: percentile(&plan_ms, 0.99),
        pool_hit_rate,
        allocs_per_step,
    }
}

fn json_cell(c: &Cell) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"threads\": {},\n",
            "      \"train_step_eager_ms\": {:.4},\n",
            "      \"train_step_plan_ms\": {:.4},\n",
            "      \"train_speedup\": {:.3},\n",
            "      \"serve_eager_p50_ms\": {:.4},\n",
            "      \"serve_eager_p99_ms\": {:.4},\n",
            "      \"serve_plan_p50_ms\": {:.4},\n",
            "      \"serve_plan_p99_ms\": {:.4},\n",
            "      \"serve_speedup\": {:.3},\n",
            "      \"pool_hit_rate\": {:.6},\n",
            "      \"allocs_per_step\": {:.4}\n",
            "    }}"
        ),
        c.threads,
        c.train_step_eager_ms,
        c.train_step_plan_ms,
        c.train_speedup(),
        c.serve_eager_p50_ms,
        c.serve_eager_p99_ms,
        c.serve_plan_p50_ms,
        c.serve_plan_p99_ms,
        c.serve_speedup(),
        c.pool_hit_rate,
        c.allocs_per_step,
    )
}

fn main() {
    let smoke = std::env::var("STGNN_BENCH_SMOKE").is_ok();
    let (train_iters, serve_iters) = if smoke { (6, 16) } else { (40, 200) };
    let scale = Scale::from_env();
    let pool_threads = par::init();
    eprintln!(
        "[steady_state] {scale:?} scale, {} mode, kernel pool = {pool_threads} threads",
        if smoke { "smoke" } else { "full" }
    );

    let city = SyntheticCity::generate(scale.chicago_city());
    let data = BikeDataset::from_city(&city, scale.dataset_config()).expect("dataset");
    let config = scale.stgnn_config();

    let mut table = TableWriter::new(
        "Steady state: eager re-trace vs compiled plan replay",
        &[
            "Threads",
            "Train eager (ms)",
            "Train plan (ms)",
            "Speedup",
            "Serve p50/p99 (ms)",
            "Pool hit rate",
            "Allocs/step",
        ],
    );
    let mut cells = Vec::new();
    for &threads in &[1usize, pool_threads.max(2)] {
        eprintln!("[steady_state] measuring at {threads} thread(s)…");
        let cell = measure(&data, &config, threads, train_iters, serve_iters);
        table.row(&[
            cell.threads.to_string(),
            format!("{:.3}", cell.train_step_eager_ms),
            format!("{:.3}", cell.train_step_plan_ms),
            format!("{:.2}x", cell.train_speedup()),
            format!(
                "{:.3}/{:.3}",
                cell.serve_plan_p50_ms, cell.serve_plan_p99_ms
            ),
            format!("{:.4}", cell.pool_hit_rate),
            format!("{:.2}", cell.allocs_per_step),
        ]);
        cells.push(cell);
    }
    table.finish("steady_state");

    let body = format!(
        "{{\n  \"benchmark\": \"steady_state\",\n  \"scale\": \"{:?}\",\n  \"smoke\": {},\n  \"train_iters\": {},\n  \"serve_iters\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
        scale,
        smoke,
        train_iters,
        serve_iters,
        cells.iter().map(json_cell).collect::<Vec<_>>().join(",\n"),
    );
    // Atomic: the driver diffs this file across runs, so a crashed bench
    // must never leave a truncated JSON behind.
    match stgnn_faults::fsio::atomic_write("BENCH_steady_state.json", |w| {
        w.write_all(body.as_bytes())
    }) {
        Ok(()) => eprintln!("[steady_state] wrote BENCH_steady_state.json"),
        Err(e) => eprintln!("[steady_state] could not write BENCH_steady_state.json: {e}"),
    }
    println!(
        "Replay reuses every intermediate buffer through the tensor pool; after warm-up the\n\
         training step and the serve forward run with zero pool misses (Allocs/step above)."
    );
}
