//! §VII-I — prediction efficiency.
//!
//! The paper reports ~0.014 s (LA) and ~0.038 s (Chicago) to predict all
//! stations for one slot on a GPU, concluding that online prediction is
//! feasible because the latency is far below the 15-minute slot. This
//! binary measures the same quantity for the trained Rust model on CPU.
//!
//! ```text
//! cargo run -p stgnn-bench --release --bin efficiency
//! ```

use std::time::Instant;
use stgnn_bench::{ExperimentContext, Scale, TableWriter};
use stgnn_core::StgnnDjd;
use stgnn_data::predictor::DemandSupplyPredictor;
use stgnn_data::Split;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[efficiency] building synthetic cities at {scale:?} scale…");
    let ctx = ExperimentContext::new(scale).expect("context");

    let mut table = TableWriter::new(
        "Section VII-I: prediction efficiency (all stations, one slot)",
        &[
            "Dataset",
            "Stations",
            "Slot (min)",
            "Mean predict (ms)",
            "P95 (ms)",
            "Slot budget used",
        ],
    );

    for (ds_name, data) in ctx.datasets() {
        eprintln!("[efficiency] training STGNN-DJD on {ds_name}…");
        let mut model = StgnnDjd::new(scale.stgnn_config(), data.n_stations()).expect("config");
        model.fit(data).expect("training");

        let slots: Vec<usize> = data.slots(Split::Test).into_iter().take(64).collect();
        // Warm-up (page in code paths) then measure.
        let _ = model.predict(data, slots[0]);
        let mut times_ms: Vec<f64> = Vec::with_capacity(slots.len());
        for &t in &slots {
            let t0 = Instant::now();
            let _ = model.predict(data, t);
            times_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        times_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mean = times_ms.iter().sum::<f64>() / times_ms.len() as f64;
        let p95_idx = ((times_ms.len() as f64 * 0.95) as usize).min(times_ms.len() - 1);
        let p95 = times_ms[p95_idx];
        let slot_minutes = data.flows().slot_minutes();
        let budget = mean / (slot_minutes as f64 * 60_000.0);
        table.row(&[
            ds_name.to_string(),
            data.n_stations().to_string(),
            slot_minutes.to_string(),
            format!("{mean:.2}"),
            format!("{p95:.2}"),
            format!("{:.6}%", budget * 100.0),
        ]);
        eprintln!("[efficiency] {ds_name}: mean {mean:.2} ms/slot");
    }
    table.finish("efficiency");
    println!(
        "Online prediction is feasible when the per-slot latency is far below the slot duration\n\
         (the paper's §VII-I argument); both rows above should use well under 0.1% of the budget."
    );
}
