//! Figure 6 — aggregator study on the pattern correlation graph (§VII-G).
//!
//! Replaces the multi-head attention aggregator with mean/max pooling over
//! the (complete) PCG. The paper's claim: data-driven attention wins.
//!
//! ```text
//! cargo run -p stgnn-bench --release --bin fig6_pcg_aggregators
//! ```

use stgnn_bench::{run_fit_eval, ExperimentContext, Scale, TableWriter};
use stgnn_core::{PcgAggregator, StgnnDjd};
use stgnn_data::Split;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[fig6] building synthetic cities at {scale:?} scale…");
    let ctx = ExperimentContext::new(scale).expect("context");

    let variants = [
        ("Mean", PcgAggregator::Mean),
        ("Max", PcgAggregator::Max),
        ("Attention", PcgAggregator::Attention),
    ];

    let mut table = TableWriter::new(
        "Figure 6: PCG aggregators (RMSE / MAE, mean±std)",
        &[
            "Aggregator",
            "Chicago RMSE",
            "Chicago MAE",
            "LA RMSE",
            "LA MAE",
        ],
    );
    let mut cells: Vec<Vec<String>> = variants
        .iter()
        .map(|(name, _)| vec![name.to_string()])
        .collect();

    for (ds_name, data) in ctx.datasets() {
        let slots = data.slots(Split::Test);
        for (row, (name, agg)) in variants.iter().enumerate() {
            eprintln!("[fig6] {ds_name}: fitting {name} aggregator…");
            let mut config = scale.stgnn_config();
            config.pcg_aggregator = *agg;
            let mut model = StgnnDjd::new(config, data.n_stations())
                .expect("valid config")
                .with_name(*name);
            let outcome = run_fit_eval(&mut model, data, &slots).expect("fit");
            let (rmse, mae) = outcome.metrics.cells();
            eprintln!("[fig6] {ds_name}: {name} → RMSE {rmse}, MAE {mae}");
            cells[row].push(rmse);
            cells[row].push(mae);
        }
    }
    for row in cells {
        table.row(&row);
    }
    table.finish("fig6_pcg_aggregators");
}
