//! Figure 4 — design variations of STGNN-DJD (§VII-F).
//!
//! Compares the full model against its three ablations on both datasets:
//! "No FC" (free node features instead of flow convolution), "No FCG" and
//! "No PCG". The paper's claim: removing any component hurts.
//!
//! ```text
//! cargo run -p stgnn-bench --release --bin fig4_ablation
//! ```

use stgnn_bench::{run_fit_eval, ExperimentContext, Scale, TableWriter};
use stgnn_core::{StgnnConfig, StgnnDjd};
use stgnn_data::Split;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[fig4] building synthetic cities at {scale:?} scale…");
    let ctx = ExperimentContext::new(scale).expect("context");

    type Tweak = fn(StgnnConfig) -> StgnnConfig;
    let variants: Vec<(&str, Tweak)> = vec![
        ("No FC", StgnnConfig::without_flow_conv),
        ("No FCG", StgnnConfig::without_fcg),
        ("No PCG", StgnnConfig::without_pcg),
        ("STGNN-DJD", |c| c),
    ];

    let mut table = TableWriter::new(
        "Figure 4: design variations (RMSE / MAE, mean±std)",
        &[
            "Variant",
            "Chicago RMSE",
            "Chicago MAE",
            "LA RMSE",
            "LA MAE",
        ],
    );
    let mut cells: Vec<Vec<String>> = variants
        .iter()
        .map(|(name, _)| vec![name.to_string()])
        .collect();

    for (ds_name, data) in ctx.datasets() {
        let slots = data.slots(Split::Test);
        for (row, (name, tweak)) in variants.iter().enumerate() {
            eprintln!("[fig4] {ds_name}: fitting {name}…");
            let config = tweak(scale.stgnn_config());
            let mut model = StgnnDjd::new(config, data.n_stations())
                .expect("valid variant")
                .with_name(*name);
            let outcome = run_fit_eval(&mut model, data, &slots).expect("fit");
            let (rmse, mae) = outcome.metrics.cells();
            eprintln!("[fig4] {ds_name}: {name} → RMSE {rmse}, MAE {mae}");
            cells[row].push(rmse);
            cells[row].push(mae);
        }
    }
    for row in cells {
        table.row(&row);
    }
    table.finish("fig4_ablation");
}
