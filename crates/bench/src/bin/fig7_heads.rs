//! Figure 7 — impact of the attention head count m (§VII-H).
//!
//! Sweeps m ∈ 1..=5. The paper's shape: error falls with m, with
//! diminishing returns past m = 4 (their default).
//!
//! ```text
//! cargo run -p stgnn-bench --release --bin fig7_heads
//! ```

use stgnn_bench::{ascii_chart, run_fit_eval, ExperimentContext, Scale, TableWriter};
use stgnn_core::StgnnDjd;
use stgnn_data::Split;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[fig7] building synthetic cities at {scale:?} scale…");
    let ctx = ExperimentContext::new(scale).expect("context");

    let mut table = TableWriter::new(
        "Figure 7: head count m vs error (RMSE / MAE, mean±std)",
        &["m", "Chicago RMSE", "Chicago MAE", "LA RMSE", "LA MAE"],
    );
    let heads: Vec<usize> = (1..=5).collect();
    let mut cells: Vec<Vec<String>> = heads.iter().map(|m| vec![m.to_string()]).collect();
    let mut series: Vec<(&str, Vec<(f32, f32)>)> = vec![("Chicago", vec![]), ("LA", vec![])];

    for (ds_idx, (ds_name, data)) in ctx.datasets().into_iter().enumerate() {
        let slots = data.slots(Split::Test);
        for (row, &m) in heads.iter().enumerate() {
            eprintln!("[fig7] {ds_name}: fitting m = {m}…");
            let mut config = scale.stgnn_config();
            config.heads = m;
            let mut model = StgnnDjd::new(config, data.n_stations()).expect("valid config");
            let outcome = run_fit_eval(&mut model, data, &slots).expect("fit");
            let (rmse, mae) = outcome.metrics.cells();
            eprintln!("[fig7] {ds_name}: m={m} → RMSE {rmse}, MAE {mae}");
            series[ds_idx].1.push((m as f32, outcome.metrics.rmse_mean));
            cells[row].push(rmse);
            cells[row].push(mae);
        }
    }
    for row in cells {
        table.row(&row);
    }
    table.finish("fig7_heads");
    println!("{}", ascii_chart("RMSE vs head count m", &series));
}
