//! Developer tool: train STGNN-DJD on the quick Chicago city with
//! env-overridable hyperparameters and print the loss trajectory plus the
//! final test RMSE next to HA/LSTM anchors. Not part of the paper's tables.
//!
//! ```text
//! STGNN_LR=0.003 STGNN_EPOCHS=30 cargo run -p stgnn-bench --release --bin debug_train
//! ```

use stgnn_bench::{ExperimentContext, Scale};
use stgnn_core::{StgnnDjd, Trainer};
use stgnn_data::predictor::{evaluate, DemandSupplyPredictor};
use stgnn_data::Split;

fn env_f32(key: &str, default: f32) -> f32 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let ctx = ExperimentContext::new(Scale::Quick).expect("context");
    let data = &ctx.chicago;
    let mut config = ctx.scale.stgnn_config();
    config.learning_rate = env_f32("STGNN_LR", config.learning_rate);
    config.epochs = env_usize("STGNN_EPOCHS", config.epochs);
    config.batch_size = env_usize("STGNN_BATCH", config.batch_size);
    config.dropout = env_f32("STGNN_DROPOUT", config.dropout);
    config.patience = env_usize("STGNN_PATIENCE", config.patience);
    config.max_batches_per_epoch = Some(env_usize(
        "STGNN_BATCHES",
        config.max_batches_per_epoch.unwrap_or(usize::MAX),
    ));
    println!(
        "config: lr={} epochs={} batch={} batches/epoch={:?} dropout={}",
        config.learning_rate,
        config.epochs,
        config.batch_size,
        config.max_batches_per_epoch,
        config.dropout
    );

    match std::env::var("STGNN_VARIANT").as_deref() {
        Ok("no_fc") => config.use_flow_conv = false,
        Ok("no_fcg") => config.use_fcg = false,
        Ok("no_pcg") => config.use_pcg = false,
        _ => {}
    }
    println!(
        "variant: fc={} fcg={} pcg={}",
        config.use_flow_conv, config.use_fcg, config.use_pcg
    );
    let mut model = StgnnDjd::new(config.clone(), data.n_stations()).expect("config");
    println!("params: {}", model.params().num_elements());
    let report = Trainer::new(config).train(&mut model, data).expect("train");
    for (e, (tr, va)) in report
        .train_losses
        .iter()
        .zip(&report.val_losses)
        .enumerate()
    {
        println!("epoch {e:>3}: train {tr:.4}  val {va:.4}");
    }

    let slots = data.slots(Split::Test);
    let row = evaluate(&model, data, &slots);
    println!(
        "STGNN-DJD test RMSE {:.3}±{:.3}  MAE {:.3}",
        row.rmse_mean, row.rmse_std, row.mae_mean
    );

    let mut ha = stgnn_baselines::HistoricalAverage::new();
    ha.fit(data).expect("ha");
    let ha_row = evaluate(&ha, data, &slots);
    println!(
        "HA        test RMSE {:.3}±{:.3}  MAE {:.3}",
        ha_row.rmse_mean, ha_row.rmse_std, ha_row.mae_mean
    );

    // Regime-adaptive HA: HA rescaled by (recent city-wide demand) /
    // (historical city-wide demand at the same window) — a hand-built
    // estimate of the latent day/momentum factor, to gauge the headroom
    // between plain HA and the Poisson noise floor.
    let mut acc = stgnn_data::MetricsAccumulator::new();
    let lookback = 4usize;
    for &t in &slots {
        let base = ha.predict(data, t);
        let recent: f32 = (1..=lookback)
            .map(|l| data.flows().demand_at(t - l).iter().sum::<f32>())
            .sum();
        // HA predictions depend only on time-of-day, so querying t−l gives
        // the historical mean for that window directly.
        let hist: f32 = (1..=lookback)
            .map(|l| ha.predict(data, t - l).demand.iter().sum::<f32>())
            .sum();
        let ratio = if hist > 1.0 {
            (recent / hist).clamp(0.3, 3.0)
        } else {
            1.0
        };
        let d: Vec<f32> = base.demand.iter().map(|v| v * ratio).collect();
        let s: Vec<f32> = base.supply.iter().map(|v| v * ratio).collect();
        let (td, ts) = data.raw_targets(t);
        acc.add_slot(&d, &s, td, ts);
    }
    let arow = acc.finalize();
    println!(
        "AdaptHA   test RMSE {:.3}±{:.3}  MAE {:.3}",
        arow.rmse_mean, arow.rmse_std, arow.mae_mean
    );

    let mut lstm = stgnn_baselines::LstmPredictor::new(ctx.scale.baseline_config());
    lstm.fit(data).expect("lstm");
    let lrow = evaluate(&lstm, data, &slots);
    println!(
        "LSTM      test RMSE {:.3}±{:.3}  MAE {:.3}",
        lrow.rmse_mean, lrow.rmse_std, lrow.mae_mean
    );
}
