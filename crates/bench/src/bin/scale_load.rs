// sound: allow-file(S004, S005): BENCH-LATENCY-IS-WALLCLOCK — these
// benchmarks measure wall-clock latency; timing flowing into the emitted
// JSON is the entire point, not a determinism leak.
//! City-scale serving benchmark: the diurnal load generator against fleets
//! of increasing replica counts, in both replicated and sharded modes.
//!
//! Emits `BENCH_scale.json` — one cell per (mode, replicas) with
//! throughput, SLO attainment, p50/p99/p999 latency (measured from the
//! *scheduled* arrival: no coordinated omission), and the shed rate.
//!
//! ```text
//! cargo run -p stgnn-bench --release --bin scale_load
//! STGNN_BENCH_SMOKE=1 cargo run -p stgnn-bench --release --bin scale_load   # CI smoke
//! ```
//!
//! Smoke mode runs a districted test city through replicated fleets of 1
//! and 2 plus a 4-shard fleet in a couple of seconds; full mode scales the
//! synthetic city into the hundreds of stations (replicated) and to a
//! 768-station metro (sharded — the replicated layout cannot even hold
//! that city's dense flow series in one process, which is the point).

use std::sync::Arc;
use stgnn_bench::TableWriter;
use stgnn_core::StgnnConfig;
use stgnn_data::dataset::{BikeDataset, DatasetConfig};
use stgnn_data::synthetic::{CityConfig, SyntheticCity};
use stgnn_graph::builders::{trip_correlation_graph, trip_flow_graph};
use stgnn_scale::plan::ShardPlan;
use stgnn_scale::{loadgen, Fleet, FleetConfig, LoadCurve, LoadReport};
use stgnn_serve::ModelSpec;

fn model_config() -> StgnnConfig {
    let mut c = StgnnConfig::test_tiny(6, 2);
    c.fcg_layers = 2;
    c
}

/// A replicated-mode cell: R identical full-city replicas.
fn replicated_cell(
    city: &SyntheticCity,
    replicas: usize,
    curve: &LoadCurve,
    label: &str,
) -> LoadReport {
    let data = Arc::new(BikeDataset::from_city(city, DatasetConfig::small(6, 2)).expect("dataset"));
    let spec = ModelSpec::new(model_config(), data.n_stations());
    let weights = spec.materialize().expect("model").weights_to_bytes();
    let fleet =
        Fleet::replicated(data, &spec, &weights, replicas, &FleetConfig::default()).expect("fleet");
    let slots = fleet.test_slots();
    loadgen::run(&fleet, curve, &slots, label)
}

/// A sharded-mode cell: one replica per shard of the union trip adjacency,
/// each serving only its halo-extended sub-city.
fn sharded_cell(city: &SyntheticCity, shards: usize, curve: &LoadCurve, label: &str) -> LoadReport {
    let n = city.registry.len();
    let adj = trip_flow_graph(&city.trips, n).union_symmetric(&trip_correlation_graph(
        &city.trips,
        n,
        city.config.days,
        city.config.slots_per_day,
        0.95,
    ));
    let config = model_config();
    let plan = ShardPlan::partition(&adj, shards, config.fcg_layers).expect("plan");
    plan.validate().expect("valid plan");
    let members: usize = plan.shards().iter().map(|s| s.members.len()).sum();
    eprintln!(
        "[scale_load] {label}: {shards} shards over {n} stations, edge cut {}, \
         mean members/shard {:.1}",
        plan.edge_cut(&adj),
        members as f64 / shards as f64
    );
    let fleet = Fleet::sharded(
        city,
        &plan,
        &config,
        &DatasetConfig::small(6, 2),
        &FleetConfig::default(),
    )
    .expect("sharded fleet");
    let slots = fleet.test_slots();
    loadgen::run(&fleet, curve, &slots, label)
}

fn main() {
    let smoke = std::env::var("STGNN_BENCH_SMOKE").is_ok();
    let curve = if smoke {
        LoadCurve::smoke()
    } else {
        LoadCurve::standard()
    };
    eprintln!(
        "[scale_load] {} mode: {} ms curve, base {} rps, rush ×{}",
        if smoke { "smoke" } else { "full" },
        curve.duration_ms,
        curve.base_rps,
        curve.rush_multiplier
    );

    let mut cells: Vec<LoadReport> = Vec::new();
    if smoke {
        let city = SyntheticCity::generate(CityConfig::test_districted(42));
        cells.push(replicated_cell(&city, 1, &curve, "replicated-1"));
        cells.push(replicated_cell(&city, 2, &curve, "replicated-2"));
        cells.push(sharded_cell(&city, 4, &curve, "sharded-4"));
    } else {
        let small = SyntheticCity::generate(CityConfig::city_scale(256, 42));
        cells.push(replicated_cell(&small, 2, &curve, "replicated-2"));
        cells.push(replicated_cell(&small, 4, &curve, "replicated-4"));
        let metro = SyntheticCity::generate(CityConfig::city_scale(768, 42));
        cells.push(sharded_cell(&metro, 8, &curve, "sharded-8"));
    }

    let mut table = TableWriter::new(
        "City-scale serving: diurnal load vs fleet layout",
        &[
            "Cell",
            "Replicas",
            "Sent",
            "Thpt (rps)",
            "SLO",
            "Shed",
            "p50/p99/p999 (us)",
        ],
    );
    for c in &cells {
        table.row(&[
            c.label.clone(),
            c.replicas.to_string(),
            c.sent.to_string(),
            format!("{:.0}", c.throughput_rps),
            format!("{:.1}%", c.slo_attainment * 100.0),
            format!("{:.1}%", c.shed_rate * 100.0),
            format!("{}/{}/{}", c.p50_us, c.p99_us, c.p999_us),
        ]);
    }
    table.finish("scale_load");

    let body = format!(
        "{{\n  \"benchmark\": \"scale_load\",\n  \"smoke\": {},\n  \"curve\": {{\"duration_ms\": {}, \"base_rps\": {}, \"rush_multiplier\": {}, \"slo_ms\": {}}},\n  \"cells\": [\n    {}\n  ]\n}}\n",
        smoke,
        curve.duration_ms,
        curve.base_rps,
        curve.rush_multiplier,
        curve.slo_ms,
        cells
            .iter()
            .map(|c| c.to_json())
            .collect::<Vec<_>>()
            .join(",\n    "),
    );
    // Atomic: the driver diffs this file across runs, so a crashed bench
    // must never leave a truncated JSON behind.
    match stgnn_faults::fsio::atomic_write("BENCH_scale.json", |w| w.write_all(body.as_bytes())) {
        Ok(()) => eprintln!("[scale_load] wrote BENCH_scale.json"),
        Err(e) => eprintln!("[scale_load] could not write BENCH_scale.json: {e}"),
    }
    println!(
        "Admission control sheds overload into the Historical-Average fallback instead of\n\
         queueing it; SLO attainment counts degraded answers, because degrading is how the\n\
         fleet meets its deadline under rush-hour load."
    );
}
