//! Figure 5 — aggregator study on the flow-convoluted graph (§VII-G).
//!
//! Replaces the flow-based aggregator with GraphSAGE mean/max and compares.
//! The paper's claim: the flow-based aggregator wins, more clearly on the
//! denser (Chicago) dataset.
//!
//! ```text
//! cargo run -p stgnn-bench --release --bin fig5_fcg_aggregators
//! ```

use stgnn_bench::{run_fit_eval, ExperimentContext, Scale, TableWriter};
use stgnn_core::{FcgAggregator, StgnnDjd};
use stgnn_data::Split;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[fig5] building synthetic cities at {scale:?} scale…");
    let ctx = ExperimentContext::new(scale).expect("context");

    let variants = [
        ("Mean", FcgAggregator::Mean),
        ("Max", FcgAggregator::Max),
        ("Flow-based", FcgAggregator::Flow),
    ];

    let mut table = TableWriter::new(
        "Figure 5: FCG aggregators (RMSE / MAE, mean±std)",
        &[
            "Aggregator",
            "Chicago RMSE",
            "Chicago MAE",
            "LA RMSE",
            "LA MAE",
        ],
    );
    let mut cells: Vec<Vec<String>> = variants
        .iter()
        .map(|(name, _)| vec![name.to_string()])
        .collect();

    for (ds_name, data) in ctx.datasets() {
        let slots = data.slots(Split::Test);
        for (row, (name, agg)) in variants.iter().enumerate() {
            eprintln!("[fig5] {ds_name}: fitting {name} aggregator…");
            let mut config = scale.stgnn_config();
            config.fcg_aggregator = *agg;
            let mut model = StgnnDjd::new(config, data.n_stations())
                .expect("valid config")
                .with_name(*name);
            let outcome = run_fit_eval(&mut model, data, &slots).expect("fit");
            let (rmse, mae) = outcome.metrics.cells();
            eprintln!("[fig5] {ds_name}: {name} → RMSE {rmse}, MAE {mae}");
            cells[row].push(rmse);
            cells[row].push(mae);
        }
    }
    for row in cells {
        table.row(&row);
    }
    table.finish("fig5_fcg_aggregators");
}
