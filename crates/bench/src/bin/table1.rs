//! Table I — overall comparison with the state of the art.
//!
//! Trains every Table I model on both synthetic cities and reports
//! RMSE/MAE (mean±std across test slots, zero-station exclusion).
//!
//! ```text
//! cargo run -p stgnn-bench --release --bin table1            # quick scale
//! STGNN_SCALE=full cargo run -p stgnn-bench --release --bin table1
//! ```

use stgnn_bench::{run_fit_eval, zoo, ExperimentContext, Scale, TableWriter};
use stgnn_data::Split;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[table1] building synthetic cities at {scale:?} scale…");
    let ctx = ExperimentContext::new(scale).expect("context");

    let mut table = TableWriter::new(
        "Table I: comparison with SOTA (RMSE / MAE, mean±std over test slots)",
        &["Method", "Chicago RMSE", "Chicago MAE", "LA RMSE", "LA MAE"],
    );

    // Evaluate column-major (per dataset) so each dataset's slots are
    // computed once, but accumulate rows per method to match the paper.
    let mut cells: Vec<Vec<String>> = zoo::all()
        .iter()
        .map(|(name, _)| vec![name.to_string()])
        .collect();
    for (ds_name, data) in ctx.datasets() {
        let slots = data.slots(Split::Test);
        for (row, (name, make)) in zoo::all().iter().enumerate() {
            eprintln!("[table1] {ds_name}: fitting {name}…");
            let mut model = make(data, scale);
            let outcome = run_fit_eval(model.as_mut(), data, &slots).expect("fit");
            let (rmse, mae) = outcome.metrics.cells();
            eprintln!(
                "[table1] {ds_name}: {name} → RMSE {rmse}, MAE {mae} (fit {:.1?}, predict {:.1?})",
                outcome.fit_time, outcome.predict_time
            );
            cells[row].push(rmse);
            cells[row].push(mae);
        }
    }
    for row in cells {
        table.row(&row);
    }
    table.finish("table1");
}
