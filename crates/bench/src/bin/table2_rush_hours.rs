//! Table II — performance at rush hours (§VII-E).
//!
//! The deep-learning subset, evaluated only on morning (07:00–10:00) and
//! evening (17:00–20:00) test slots. The paper's observation: STGNN-DJD's
//! margin *widens* at rush hours because denser flow feeds the FCG.
//!
//! ```text
//! cargo run -p stgnn-bench --release --bin table2_rush_hours
//! ```

use stgnn_bench::{run_fit_eval, zoo, ExperimentContext, Scale, TableWriter};
use stgnn_data::Split;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[table2] building synthetic cities at {scale:?} scale…");
    let ctx = ExperimentContext::new(scale).expect("context");

    let mut table = TableWriter::new(
        "Table II: performance at rush hours (RMSE / MAE, mean±std)",
        &[
            "Window",
            "Method",
            "Chicago RMSE",
            "Chicago MAE",
            "LA RMSE",
            "LA MAE",
        ],
    );

    for (window, morning) in [("Morning", true), ("Evening", false)] {
        let mut cells: Vec<Vec<String>> = zoo::deep()
            .iter()
            .map(|(name, _)| vec![window.to_string(), name.to_string()])
            .collect();
        for (ds_name, data) in ctx.datasets() {
            let slots = data.rush_slots(Split::Test, morning);
            for (row, (name, make)) in zoo::deep().iter().enumerate() {
                eprintln!("[table2] {window}/{ds_name}: fitting {name}…");
                let mut model = make(data, scale);
                let outcome = run_fit_eval(model.as_mut(), data, &slots).expect("fit");
                let (rmse, mae) = outcome.metrics.cells();
                cells[row].push(rmse);
                cells[row].push(mae);
            }
        }
        for row in cells {
            table.row(&row);
        }
    }
    table.finish("table2_rush_hours");
}
