//! Figure 8 — impact of the FCG layer count (§VII-H).
//!
//! Sweeps FCG depth 1..=5. The paper's shape: best at 2 layers; deeper
//! stacks add parameters without accuracy.
//!
//! ```text
//! cargo run -p stgnn-bench --release --bin fig8_fcg_layers
//! ```

use stgnn_bench::{ascii_chart, run_fit_eval, ExperimentContext, Scale, TableWriter};
use stgnn_core::StgnnDjd;
use stgnn_data::Split;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[fig8] building synthetic cities at {scale:?} scale…");
    let ctx = ExperimentContext::new(scale).expect("context");

    let mut table = TableWriter::new(
        "Figure 8: FCG layer count vs error (RMSE / MAE, mean±std)",
        &[
            "FCG layers",
            "Chicago RMSE",
            "Chicago MAE",
            "LA RMSE",
            "LA MAE",
        ],
    );
    let depths: Vec<usize> = (1..=5).collect();
    let mut cells: Vec<Vec<String>> = depths.iter().map(|l| vec![l.to_string()]).collect();
    let mut series: Vec<(&str, Vec<(f32, f32)>)> = vec![("Chicago", vec![]), ("LA", vec![])];

    for (ds_idx, (ds_name, data)) in ctx.datasets().into_iter().enumerate() {
        let slots = data.slots(Split::Test);
        for (row, &layers) in depths.iter().enumerate() {
            eprintln!("[fig8] {ds_name}: fitting {layers} FCG layer(s)…");
            let mut config = scale.stgnn_config();
            config.fcg_layers = layers;
            let mut model = StgnnDjd::new(config, data.n_stations()).expect("valid config");
            let outcome = run_fit_eval(&mut model, data, &slots).expect("fit");
            let (rmse, mae) = outcome.metrics.cells();
            eprintln!("[fig8] {ds_name}: layers={layers} → RMSE {rmse}, MAE {mae}");
            series[ds_idx]
                .1
                .push((layers as f32, outcome.metrics.rmse_mean));
            cells[row].push(rmse);
            cells[row].push(mae);
        }
    }
    for row in cells {
        table.row(&row);
    }
    table.finish("fig8_fcg_layers");
    println!("{}", ascii_chart("RMSE vs FCG layer count", &series));
}
