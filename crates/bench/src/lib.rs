//! # stgnn-bench
//!
//! The experiment harness behind every table and figure of the STGNN-DJD
//! evaluation (§VII–§VIII). Each `src/bin/*.rs` binary regenerates one
//! artefact; this library provides the shared machinery:
//!
//! * [`Scale`] — `Quick` (default; CPU-minutes) vs `Full` (closer to paper
//!   scale; CPU-hours), selected by the `STGNN_SCALE` environment variable.
//! * [`ExperimentContext`] — the two synthetic cities ("chicago-like",
//!   "la-like") wrapped as datasets with the scale's windows.
//! * [`zoo`] — constructors for every Table I predictor.
//! * [`run_fit_eval`] — train + evaluate one predictor over a slot filter,
//!   with wall-clock accounting for §VII-I.
//! * [`TableWriter`] — aligned console tables plus machine-readable CSV
//!   under `results/`.
//!
//! Absolute numbers will not match the paper (synthetic data, CPU, scaled
//! sizes); the binaries exist to reproduce the *shape* of each result — who
//! wins, roughly by how much, and where the sweet spots sit. See
//! EXPERIMENTS.md for the paper-vs-measured record.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use stgnn_analyze::Severity;
use stgnn_baselines::{
    Arima, Astgcn, BaselineConfig, GBike, Gcnn, GradientBoostedTrees, HistoricalAverage,
    LstmPredictor, Mgnn, Mlp, RnnPredictor, Stsgcn,
};
use stgnn_core::{StgnnConfig, StgnnDjd};
use stgnn_data::dataset::{BikeDataset, DatasetConfig};
use stgnn_data::error::Result;
use stgnn_data::predictor::{evaluate, DemandSupplyPredictor};
use stgnn_data::synthetic::{CityConfig, SyntheticCity};
use stgnn_data::MetricsRow;

/// Experiment size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Default: small cities, short windows — minutes per table on a laptop.
    Quick,
    /// Closer to the paper: 64/32 stations, 96 slots/day, k=96, d=7.
    Full,
}

impl Scale {
    /// Reads `STGNN_SCALE` (`quick`/`full`), defaulting to `Quick`.
    pub fn from_env() -> Scale {
        match std::env::var("STGNN_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// The Chicago-like city at this scale.
    pub fn chicago_city(self) -> CityConfig {
        match self {
            Scale::Full => CityConfig::chicago_like(),
            Scale::Quick => CityConfig {
                name: "chicago-like".into(),
                n_stations: 28,
                days: 14,
                slots_per_day: 48,
                seed: 0xC41CA60,
                trips_per_station_day: 20.0,
                bike_speed_kmh: 9.0,
                radius_km: 6.0,
                districts: 1,
                min_gravity: 0.0,
            },
        }
    }

    /// The Los-Angeles-like city at this scale.
    pub fn la_city(self) -> CityConfig {
        match self {
            Scale::Full => CityConfig::los_angeles_like(),
            Scale::Quick => CityConfig {
                name: "la-like".into(),
                n_stations: 16,
                days: 14,
                slots_per_day: 48,
                seed: 0x10A276,
                trips_per_station_day: 8.5,
                bike_speed_kmh: 9.0,
                radius_km: 5.0,
                districts: 1,
                min_gravity: 0.0,
            },
        }
    }

    /// Dataset windows at this scale.
    pub fn dataset_config(self) -> DatasetConfig {
        match self {
            Scale::Full => DatasetConfig::paper(),
            Scale::Quick => DatasetConfig::small(48, 3),
        }
    }

    /// STGNN-DJD configuration at this scale.
    pub fn stgnn_config(self) -> StgnnConfig {
        match self {
            Scale::Full => StgnnConfig::paper(),
            Scale::Quick => StgnnConfig::quick(48, 3),
        }
    }

    /// Baseline configuration at this scale.
    pub fn baseline_config(self) -> BaselineConfig {
        match self {
            Scale::Full => BaselineConfig {
                n_lags: 12,
                n_days: 7,
                hidden: 64,
                epochs: 40,
                batch_size: 32,
                learning_rate: 0.005,
                patience: 5,
                max_batches_per_epoch: None,
                seed: 7,
            },
            Scale::Quick => BaselineConfig::default(),
        }
    }
}

/// The two evaluation datasets at a given scale.
pub struct ExperimentContext {
    /// The selected scale.
    pub scale: Scale,
    /// Chicago-like dataset.
    pub chicago: BikeDataset,
    /// Los-Angeles-like dataset.
    pub los_angeles: BikeDataset,
}

impl ExperimentContext {
    /// Generates both cities and wraps them as datasets.
    pub fn new(scale: Scale) -> Result<Self> {
        let chicago = BikeDataset::from_city(
            &SyntheticCity::generate(scale.chicago_city()),
            scale.dataset_config(),
        )?;
        let los_angeles = BikeDataset::from_city(
            &SyntheticCity::generate(scale.la_city()),
            scale.dataset_config(),
        )?;
        let ctx = ExperimentContext {
            scale,
            chicago,
            los_angeles,
        };
        ctx.surface_tape_diagnostics();
        Ok(ctx)
    }

    /// Runs the pre-execution tape validator over the STGNN-DJD inference
    /// tape on each dataset and prints any `Warn` diagnostics to stderr, so
    /// every bench binary surfaces analyzer findings at startup — before an
    /// experiment spends CPU-hours training on a degenerate configuration.
    fn surface_tape_diagnostics(&self) {
        for (name, data) in self.datasets() {
            let model = match StgnnDjd::new(self.scale.stgnn_config(), data.n_stations()) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("[analyze] {name}: model construction failed: {e}");
                    continue;
                }
            };
            match model.validate_inference_tape(data, data.first_valid_slot()) {
                Ok(report) => {
                    eprintln!("[analyze] {name}: {}", report.summary());
                    for d in report.at(Severity::Warn) {
                        eprintln!("[analyze] {name}: {d}");
                    }
                }
                Err(e) => eprintln!("[analyze] {name}: tape probe failed: {e}"),
            }
        }
    }

    /// `[("Chicago", &chicago), ("Los Angeles", &la)]` for table loops.
    pub fn datasets(&self) -> [(&'static str, &BikeDataset); 2] {
        [
            ("Chicago", &self.chicago),
            ("Los Angeles", &self.los_angeles),
        ]
    }
}

/// One fitted-and-evaluated cell plus wall-clock accounting.
pub struct EvalOutcome {
    /// The metric row (mean±std RMSE/MAE across slots).
    pub metrics: MetricsRow,
    /// Training wall time.
    pub fit_time: Duration,
    /// Total prediction wall time over the evaluated slots.
    pub predict_time: Duration,
    /// Slots evaluated.
    pub n_slots: usize,
}

impl EvalOutcome {
    /// Mean prediction time per slot (the §VII-I efficiency number).
    pub fn predict_time_per_slot(&self) -> Duration {
        self.predict_time / self.n_slots.max(1) as u32
    }
}

/// Fits `predictor` and evaluates it over `slots`.
pub fn run_fit_eval(
    predictor: &mut dyn DemandSupplyPredictor,
    data: &BikeDataset,
    slots: &[usize],
) -> Result<EvalOutcome> {
    let t0 = Instant::now();
    predictor.fit(data)?;
    let fit_time = t0.elapsed();
    let t1 = Instant::now();
    let metrics = evaluate(predictor, data, slots);
    let predict_time = t1.elapsed();
    Ok(EvalOutcome {
        metrics,
        fit_time,
        predict_time,
        n_slots: slots.len(),
    })
}

/// Constructors for every Table I predictor, in the paper's row order.
pub mod zoo {
    use super::*;

    /// A named predictor factory (models are per-dataset because the graph
    /// models bind to station geometry at fit time and STGNN-DJD sizes its
    /// parameters by `n`).
    pub type Factory = (
        &'static str,
        fn(&BikeDataset, Scale) -> Box<dyn DemandSupplyPredictor>,
    );

    fn ha(_: &BikeDataset, _: Scale) -> Box<dyn DemandSupplyPredictor> {
        Box::new(HistoricalAverage::new())
    }
    fn arima(_: &BikeDataset, _: Scale) -> Box<dyn DemandSupplyPredictor> {
        Box::new(Arima::paper())
    }
    fn xgboost(_: &BikeDataset, scale: Scale) -> Box<dyn DemandSupplyPredictor> {
        Box::new(GradientBoostedTrees::new(
            scale.baseline_config(),
            Default::default(),
        ))
    }
    fn mlp(_: &BikeDataset, scale: Scale) -> Box<dyn DemandSupplyPredictor> {
        Box::new(Mlp::new(scale.baseline_config()))
    }
    fn rnn(_: &BikeDataset, scale: Scale) -> Box<dyn DemandSupplyPredictor> {
        Box::new(RnnPredictor::new(scale.baseline_config()))
    }
    fn lstm(_: &BikeDataset, scale: Scale) -> Box<dyn DemandSupplyPredictor> {
        Box::new(LstmPredictor::new(scale.baseline_config()))
    }
    fn gcnn(_: &BikeDataset, scale: Scale) -> Box<dyn DemandSupplyPredictor> {
        Box::new(Gcnn::new(scale.baseline_config()))
    }
    fn mgnn(_: &BikeDataset, scale: Scale) -> Box<dyn DemandSupplyPredictor> {
        Box::new(Mgnn::new(scale.baseline_config()))
    }
    fn astgcn(_: &BikeDataset, scale: Scale) -> Box<dyn DemandSupplyPredictor> {
        Box::new(Astgcn::new(scale.baseline_config()))
    }
    fn stsgcn(_: &BikeDataset, scale: Scale) -> Box<dyn DemandSupplyPredictor> {
        Box::new(Stsgcn::new(scale.baseline_config()))
    }
    fn gbike(_: &BikeDataset, scale: Scale) -> Box<dyn DemandSupplyPredictor> {
        Box::new(GBike::new(scale.baseline_config()))
    }
    fn stgnn_djd(data: &BikeDataset, scale: Scale) -> Box<dyn DemandSupplyPredictor> {
        Box::new(StgnnDjd::new(scale.stgnn_config(), data.n_stations()).expect("valid config"))
    }

    /// All twelve Table I rows.
    pub fn all() -> Vec<Factory> {
        vec![
            ("HA", ha),
            ("ARIMA", arima),
            ("XGBoost", xgboost),
            ("MLP", mlp),
            ("RNN", rnn),
            ("LSTM", lstm),
            ("GCNN", gcnn),
            ("MGNN", mgnn),
            ("ASTGCN", astgcn),
            ("STSGCN", stsgcn),
            ("GBike", gbike),
            ("STGNN-DJD", stgnn_djd),
        ]
    }

    /// The deep-learning subset compared in Table II (rush hours).
    pub fn deep() -> Vec<Factory> {
        vec![
            ("GCNN", gcnn),
            ("MGNN", mgnn),
            ("ASTGCN", astgcn),
            ("STSGCN", stsgcn),
            ("GBike", gbike),
            ("STGNN-DJD", stgnn_djd),
        ]
    }
}

/// Console table + CSV writer.
pub struct TableWriter {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableWriter {
    /// Starts a table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        TableWriter {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders an aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.columns, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the table and writes `results/<file>.csv`.
    pub fn finish(&self, file: &str) {
        println!("{}", self.render());
        if let Err(e) = self.write_csv(file) {
            eprintln!("warning: could not write results/{file}.csv: {e}");
        }
    }

    fn write_csv(&self, file: &str) -> std::io::Result<()> {
        std::fs::create_dir_all("results")?;
        // Atomic: a crash (or an injected fault) mid-write never leaves a
        // half-written results file for a later run to misread.
        stgnn_faults::fsio::atomic_write(format!("results/{file}.csv"), |f| {
            writeln!(f, "{}", self.columns.join(","))?;
            for row in &self.rows {
                writeln!(f, "{}", row.join(","))?;
            }
            Ok(())
        })
    }
}

/// Renders a simple ASCII line chart of `(x, y)` points (used by the
/// hyperparameter-sweep figures).
pub fn ascii_chart(title: &str, series: &[(&str, Vec<(f32, f32)>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n-- {title} --");
    for (name, points) in series {
        let _ = write!(out, "{name:>10}: ");
        for (x, y) in points {
            let _ = write!(out, "({x:.0}, {y:.3}) ");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults_quick() {
        std::env::remove_var("STGNN_SCALE");
        assert_eq!(Scale::from_env(), Scale::Quick);
    }

    #[test]
    fn quick_context_builds() {
        let ctx = ExperimentContext::new(Scale::Quick).unwrap();
        assert_eq!(ctx.chicago.n_stations(), 28);
        assert_eq!(ctx.los_angeles.n_stations(), 16);
        assert!(!ctx.chicago.slots(stgnn_data::Split::Test).is_empty());
    }

    #[test]
    fn zoo_has_twelve_rows_in_paper_order() {
        let names: Vec<&str> = zoo::all().iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), 12);
        assert_eq!(names[0], "HA");
        assert_eq!(names[11], "STGNN-DJD");
        assert_eq!(zoo::deep().len(), 6);
    }

    #[test]
    fn table_writer_renders_and_aligns() {
        let mut t = TableWriter::new("Demo", &["Method", "RMSE"]);
        t.row(&["HA".into(), "3.81".into()]);
        t.row(&["STGNN-DJD".into(), "1.18".into()]);
        let s = t.render();
        assert!(s.contains("Demo"));
        assert!(s.contains("STGNN-DJD"));
        assert!(s.contains("Method"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_writer_rejects_ragged_rows() {
        let mut t = TableWriter::new("Demo", &["A", "B"]);
        t.row(&["only one".into()]);
    }
}
