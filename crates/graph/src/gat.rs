//! Single-head graph attention layer (Veličković et al.), with the optional
//! edge mask and distance prior that the GBike baseline adds.
//!
//! Attention logits use the standard GAT decomposition: with
//! `W_a = [a_src; a_dst]`, the pairwise score
//! `e(i,j) = elu([h_i ‖ h_j]·W_a)` factors into `elu(s_i + d_j)` where
//! `s = H·a_src` and `d = H·a_dst` — an O(n²) broadcast instead of an O(n³)
//! explicit pairing. STGNN-DJD's PCG attention uses the same trick (see
//! `stgnn-core::pcg`).

use crate::digraph::DiGraph;
use rand::Rng;
use std::rc::Rc;
use stgnn_tensor::autograd::{Graph, Param, ParamSet, Var};
use stgnn_tensor::nn::xavier_uniform;
use stgnn_tensor::{Shape, Tensor};

/// Additive masks use this in place of −∞ so softmax stays finite.
const NEG_INF: f32 = -1e9;

/// A single attention head over node features.
pub struct GatLayer {
    w: Rc<Param>,
    a_src: Rc<Param>,
    a_dst: Rc<Param>,
    /// `0/1` mask with self-loops; `None` = dense attention over all pairs.
    mask_penalty: Option<Tensor>,
    /// Additive logit prior (e.g. GBike's distance kernel); `None` = flat.
    prior: Option<Tensor>,
    out_elu: bool,
}

impl GatLayer {
    /// Builds a head projecting `in_dim → out_dim`.
    pub fn new(
        params: &mut ParamSet,
        rng: &mut impl Rng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        out_elu: bool,
    ) -> Self {
        GatLayer {
            w: params.add(format!("{name}.w"), xavier_uniform(rng, in_dim, out_dim)),
            a_src: params.add(format!("{name}.a_src"), xavier_uniform(rng, out_dim, 1)),
            a_dst: params.add(format!("{name}.a_dst"), xavier_uniform(rng, out_dim, 1)),
            mask_penalty: None,
            prior: None,
            out_elu,
        }
    }

    /// Restricts attention to the edges (and self-loops) of `graph`.
    pub fn with_mask(mut self, graph: &DiGraph) -> Self {
        let mask = graph.mask_with_self_loops();
        self.mask_penalty = Some(mask.map(|m| if m > 0.0 { 0.0 } else { NEG_INF }));
        self
    }

    /// Adds an additive logit prior (row i, col j biases attention i→j).
    pub fn with_prior(mut self, prior: Tensor) -> Self {
        self.prior = Some(prior);
        self
    }

    /// Applies the head; returns `(output, attention)` so callers can export
    /// attention matrices (the paper's case study does exactly that).
    pub fn forward_with_attention(&self, g: &Graph, h: &Var) -> (Var, Var) {
        let n = h.shape().rows();
        let w = g.param(&self.w);
        let hw = h.matmul(&w);
        let s = hw.matmul(&g.param(&self.a_src)); // n×1
        let d = hw.matmul(&g.param(&self.a_dst)); // n×1
        let ones_row = g.leaf(Tensor::ones(Shape::matrix(1, n)));
        let mut logits = s.matmul(&ones_row).add_row_broadcast(&d.transpose()).elu();
        if let Some(prior) = &self.prior {
            logits = logits.add(&g.leaf(prior.clone()));
        }
        if let Some(penalty) = &self.mask_penalty {
            logits = logits.add(&g.leaf(penalty.clone()));
        }
        let alpha = logits.softmax_rows();
        let out = alpha.matmul(&hw);
        let out = if self.out_elu { out.elu() } else { out };
        (out, alpha)
    }

    /// Applies the head, discarding the attention matrix.
    pub fn forward(&self, g: &Graph, h: &Var) -> Var {
        self.forward_with_attention(g, h).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stgnn_tensor::optim::{Adam, Optimizer};

    fn features(n: usize, f: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..n * f).map(|_| rng.gen_range(-1.0..1.0)).collect();
        Tensor::from_vec(Shape::matrix(n, f), data).unwrap()
    }

    #[test]
    fn attention_rows_are_distributions() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = GatLayer::new(&mut ps, &mut rng, "gat", 4, 3, true);
        let g = Graph::new();
        let h = g.leaf(features(5, 4, 2));
        let (out, alpha) = layer.forward_with_attention(&g, &h);
        assert_eq!(out.value().shape().dims(), &[5, 3]);
        for i in 0..5 {
            let sum: f32 = alpha.value().row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn mask_zeroes_non_edges() {
        let graph = DiGraph::from_edges(3, &[(0, 1, 1.0)]);
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let layer = GatLayer::new(&mut ps, &mut rng, "gat", 2, 2, false).with_mask(&graph);
        let g = Graph::new();
        let (_, alpha) = layer.forward_with_attention(&g, &g.leaf(features(3, 2, 4)));
        let a = alpha.value();
        assert!(
            a.get2(0, 2) < 1e-6,
            "masked edge attended: {}",
            a.get2(0, 2)
        );
        assert!(a.get2(0, 0) + a.get2(0, 1) > 1.0 - 1e-5);
        // node 2 has only its self-loop
        assert!((a.get2(2, 2) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn prior_biases_attention() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(5);
        // Huge prior on column 1 should dominate the learned logits.
        let mut prior = Tensor::zeros(Shape::matrix(3, 3));
        for i in 0..3 {
            prior.set2(i, 1, 50.0);
        }
        let layer = GatLayer::new(&mut ps, &mut rng, "gat", 2, 2, false).with_prior(prior);
        let g = Graph::new();
        let (_, alpha) = layer.forward_with_attention(&g, &g.leaf(features(3, 2, 6)));
        for i in 0..3 {
            assert!(alpha.value().get2(i, 1) > 0.99, "prior ignored at row {i}");
        }
    }

    #[test]
    fn gat_learns_to_attend_to_the_informative_node() {
        // Target for every node = node 0's feature; attention must learn to
        // focus on column 0.
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(7);
        let layer = GatLayer::new(&mut ps, &mut rng, "gat", 1, 1, false);
        let mut opt = Adam::new(0.05);
        let mut last = f32::INFINITY;
        for step in 0..300 {
            let mut x = features(4, 1, 100 + step as u64);
            // make node 0 clearly identifiable
            x.set2(0, 0, 2.0);
            let target = Tensor::full(Shape::matrix(4, 1), x.get2(0, 0));
            let g = Graph::new();
            let out = layer.forward(&g, &g.leaf(x));
            let loss = out.sub(&g.leaf(target)).square().mean_all();
            last = loss.value().scalar();
            ps.zero_grads();
            loss.backward();
            opt.step(&ps);
        }
        assert!(last < 0.05, "gat failed to focus attention: loss {last}");
    }
}
