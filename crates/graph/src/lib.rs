//! # stgnn-graph
//!
//! Graph structures and generic graph-neural-network layers used by both the
//! STGNN-DJD model and the graph baselines of the paper's Table I:
//!
//! * [`digraph`] — a compact CSR weighted digraph with dense-adjacency and
//!   degree-normalisation exports for GNN layers.
//! * [`builders`] — the graph constructions the baselines assume:
//!   distance-threshold graphs (GCNN / GBike's locality prior), pattern
//!   correlation graphs (MGNN), and aggregate flow graphs.
//! * [`gcn`] — a Kipf–Welling graph convolution layer on the autodiff tape.
//! * [`gat`] — a single-head graph attention layer with optional edge mask
//!   and distance prior (GBike's distance-weighted attention).
//! * [`aggregate`] — the mean/max neighbourhood aggregators of the paper's
//!   §VII-G aggregator study.

pub mod aggregate;
pub mod builders;
pub mod digraph;
pub mod gat;
pub mod gcn;

pub use digraph::DiGraph;
pub use gat::GatLayer;
pub use gcn::GcnLayer;
