// lint: allow-file(L004): flow/correlation matrices are allocated n*n right
// before the double loops that fill them.
//! Graph constructions used by the baselines.
//!
//! The paper's related-work critique (§II) is that prior models *assume* a
//! relationship between distance and dependency: they build graphs from
//! station distance or static correlation and then convolve over them. These
//! builders implement those priors so the baselines are faithful.

use crate::digraph::DiGraph;
use std::collections::HashMap;
use stgnn_data::flow::FlowSeries;
use stgnn_data::station::StationRegistry;
use stgnn_data::trip::TripRecord;

/// Distance-threshold graph: an undirected edge (both directions) between
/// stations closer than `threshold_km`, weighted `1/(1+d)` so nearer means
/// stronger — the locality prior of GCNN and GBike.
pub fn distance_graph(registry: &StationRegistry, threshold_km: f64) -> DiGraph {
    let n = registry.len();
    let mut edges = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let d = registry.distance_km(i, j);
            if d <= threshold_km {
                edges.push((i, j, (1.0 / (1.0 + d)) as f32));
            }
        }
    }
    DiGraph::from_edges(n, &edges)
}

/// K-nearest-neighbour distance graph: each station connects to its `k`
/// nearest stations (directed), weighted `1/(1+d)`. Guarantees connectivity
/// of attention even in sparse suburbs.
pub fn knn_graph(registry: &StationRegistry, k: usize) -> DiGraph {
    let n = registry.len();
    let mut edges = Vec::new();
    for i in 0..n {
        for j in registry.nearest(i, k) {
            let d = registry.distance_km(i, j);
            edges.push((i, j, (1.0 / (1.0 + d)) as f32));
        }
    }
    DiGraph::from_edges(n, &edges)
}

/// Aggregate flow graph: edge `i → j` weighted by total trips `i → j` over
/// slots `[t_lo, t_hi)` (checkout-keyed). The static flow prior MGNN uses.
pub fn flow_graph(flows: &FlowSeries, t_lo: usize, t_hi: usize) -> DiGraph {
    let n = flows.n_stations();
    let mut total = vec![0.0f32; n * n];
    for t in t_lo..t_hi {
        for (acc, &v) in total.iter_mut().zip(flows.outflow(t).data()) {
            *acc += v;
        }
    }
    let mut edges = Vec::new();
    for i in 0..n {
        for j in 0..n {
            let w = total[i * n + j];
            if w > 0.0 && i != j {
                edges.push((i, j, w));
            }
        }
    }
    DiGraph::from_edges(n, &edges)
}

/// Pattern-correlation graph: edge between stations whose *demand profiles*
/// over slots `[t_lo, t_hi)` have Pearson correlation at least `min_corr`
/// (undirected, weight = correlation). MGNN's similarity graph.
///
/// A station's profile is its mean demand per time-of-day slot, which is what
/// "demand-supply pattern" means in the paper (Fig 3b): averaging over days
/// removes per-slot Poisson noise and keeps the schedule shape.
pub fn correlation_graph(flows: &FlowSeries, t_lo: usize, t_hi: usize, min_corr: f32) -> DiGraph {
    let n = flows.n_stations();
    let profiles = demand_profiles(flows, t_lo, t_hi);
    let spd = flows.slots_per_day();
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let c = pearson(
                &profiles[i * spd..(i + 1) * spd],
                &profiles[j * spd..(j + 1) * spd],
            );
            if c >= min_corr {
                edges.push((i, j, c));
                edges.push((j, i, c));
            }
        }
    }
    DiGraph::from_edges(n, &edges)
}

/// [`flow_graph`] straight from trip records, without materialising per-slot
/// flow matrices. At city scale (thousands of stations) a [`FlowSeries`]
/// costs `O(n² · slots)` memory, which is exactly what the shard planner
/// exists to avoid — but the planner still needs the full-city adjacency.
/// This builder is `O(trips)` time and `O(edges)` memory.
pub fn trip_flow_graph(trips: &[TripRecord], n: usize) -> DiGraph {
    let mut total: HashMap<(usize, usize), f32> = HashMap::new();
    for t in trips {
        if t.origin != t.dest {
            *total.entry((t.origin, t.dest)).or_insert(0.0) += 1.0;
        }
    }
    let edges: Vec<(usize, usize, f32)> = total.into_iter().map(|((i, j), w)| (i, j, w)).collect();
    DiGraph::from_edges(n, &edges)
}

/// [`correlation_graph`] straight from trip records: station demand profiles
/// are per-time-of-day mean checkout counts over the whole horizon, and an
/// undirected edge connects stations whose profiles correlate at least
/// `min_corr`. `O(trips + n² · slots_per_day)` with `O(edges)` memory — the
/// pair sweep is unavoidable (correlation is a dense relation), but nothing
/// quadratic in *slots* is ever materialised.
pub fn trip_correlation_graph(
    trips: &[TripRecord],
    n: usize,
    days: usize,
    slots_per_day: usize,
    min_corr: f32,
) -> DiGraph {
    let slot_min = (1440 / slots_per_day.max(1)) as i64;
    let mut profiles = vec![0.0f32; n * slots_per_day];
    for t in trips {
        if t.origin >= n || t.start_min < 0 {
            continue;
        }
        let tod = (t.start_min / slot_min) as usize % slots_per_day;
        profiles[t.origin * slots_per_day + tod] += 1.0;
    }
    let norm = 1.0 / days.max(1) as f32;
    for p in &mut profiles {
        *p *= norm;
    }
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let c = pearson(
                &profiles[i * slots_per_day..(i + 1) * slots_per_day],
                &profiles[j * slots_per_day..(j + 1) * slots_per_day],
            );
            if c >= min_corr {
                edges.push((i, j, c));
                edges.push((j, i, c));
            }
        }
    }
    DiGraph::from_edges(n, &edges)
}

/// Mean demand per time-of-day slot for every station over `[t_lo, t_hi)`,
/// flattened as `station-major` rows of length `slots_per_day`.
pub fn demand_profiles(flows: &FlowSeries, t_lo: usize, t_hi: usize) -> Vec<f32> {
    let n = flows.n_stations();
    let spd = flows.slots_per_day();
    let mut sums = vec![0.0f32; n * spd];
    let mut counts = vec![0u32; spd];
    for t in t_lo..t_hi {
        let tod = flows.tod_of_slot(t);
        counts[tod] += 1;
        let d = flows.demand_at(t);
        for i in 0..n {
            sums[i * spd + tod] += d[i];
        }
    }
    for i in 0..n {
        for tod in 0..spd {
            if counts[tod] > 0 {
                sums[i * spd + tod] /= counts[tod] as f32;
            }
        }
    }
    sums
}

/// Pearson correlation of two equal-length series; 0.0 when either is
/// constant (no signal to correlate).
pub fn pearson(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let ma = a.iter().map(|&x| x as f64).sum::<f64>() / n;
    let mb = b.iter().map(|&x| x as f64).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let (dx, dy) = (x as f64 - ma, y as f64 - mb);
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    (cov / (va.sqrt() * vb.sqrt())) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgnn_data::station::{Archetype, Station};
    use stgnn_data::synthetic::{CityConfig, SyntheticCity};

    fn line_registry() -> StationRegistry {
        // Stations 1 km apart on a meridian: 0 —1km— 1 —1km— 2 —…— 3
        let stations = (0..4)
            .map(|id| Station {
                id,
                name: format!("s{id}"),
                lon: -87.63,
                lat: 41.88 + id as f64 / 110.574,
                archetype: Archetype::Mixed,
            })
            .collect();
        StationRegistry::new(stations)
    }

    #[test]
    fn distance_graph_respects_threshold() {
        let reg = line_registry();
        let g = distance_graph(&reg, 1.5);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        // closer edges weigh more
        assert!(g.weight(0, 1) > 0.0);
    }

    #[test]
    fn knn_graph_has_fixed_out_degree() {
        let reg = line_registry();
        let g = knn_graph(&reg, 2);
        for i in 0..4 {
            assert_eq!(g.out_degree(i), 2, "node {i}");
        }
        // nearest of node 0 are 1 and 2
        assert!(g.has_edge(0, 1) && g.has_edge(0, 2) && !g.has_edge(0, 3));
    }

    #[test]
    fn flow_graph_accumulates_trips() {
        let city = SyntheticCity::generate(CityConfig::test_tiny(17));
        let flows = FlowSeries::from_trips(&city.trips, city.registry.len(), 8, 24).unwrap();
        let g = flow_graph(&flows, 0, flows.num_slots());
        assert!(g.num_edges() > 0);
        // Total edge weight equals in-horizon checkouts.
        let total: f32 = (0..g.num_nodes())
            .map(|s| g.neighbors(s).map(|(_, w)| w).sum::<f32>())
            .sum();
        let expected: f32 = (0..flows.num_slots())
            .map(|t| flows.outflow(t).sum_all().scalar())
            .sum();
        assert!((total - expected).abs() < 1.0);
    }

    #[test]
    fn pearson_known_values() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-6);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-6);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn correlation_graph_is_symmetric() {
        let city = SyntheticCity::generate(CityConfig::test_tiny(19));
        let flows = FlowSeries::from_trips(&city.trips, city.registry.len(), 8, 24).unwrap();
        let g = correlation_graph(&flows, 0, flows.num_slots(), 0.3);
        for s in 0..g.num_nodes() {
            for (d, w) in g.neighbors(s) {
                assert!((g.weight(d, s) - w).abs() < 1e-6, "asymmetric edge {s}→{d}");
                assert!(w >= 0.3);
            }
        }
    }

    #[test]
    fn correlated_schools_connect_despite_distance() {
        // The synthetic generator places two schools on opposite sides of
        // town with a shared bell schedule; the correlation graph should
        // link them even though the distance graph cannot.
        let city = SyntheticCity::generate(CityConfig::test_small(12));
        let flows = FlowSeries::from_trips(
            &city.trips,
            city.registry.len(),
            city.config.days,
            city.config.slots_per_day,
        )
        .unwrap();
        let schools = city.registry.with_archetype(Archetype::School);
        let (a, b) = (schools[0], schools[1]);
        let spd = flows.slots_per_day();
        let profiles = demand_profiles(&flows, 0, flows.num_slots());
        let profile = |i: usize| &profiles[i * spd..(i + 1) * spd];
        let school_corr = pearson(profile(a), profile(b));
        // The motif is *relative*: the distant school correlates with the
        // other school more strongly than with a typical non-school station.
        let others: Vec<f32> = (0..city.registry.len())
            .filter(|&i| i != a && !schools.contains(&i))
            .map(|i| pearson(profile(a), profile(i)))
            .collect();
        let mean_other = others.iter().sum::<f32>() / others.len() as f32;
        assert!(
            school_corr > mean_other + 0.1,
            "school pair correlation {school_corr} not above background {mean_other}"
        );
        let dist_g = distance_graph(&city.registry, 3.0);
        assert!(!dist_g.has_edge(a, b), "schools unexpectedly close");
    }

    #[test]
    fn trip_flow_graph_matches_flow_series_builder() {
        let city = SyntheticCity::generate(CityConfig::test_tiny(23));
        let flows = FlowSeries::from_trips(
            &city.trips,
            city.registry.len(),
            city.config.days,
            city.config.slots_per_day,
        )
        .unwrap();
        let from_flows = flow_graph(&flows, 0, flows.num_slots());
        let from_trips = trip_flow_graph(&city.trips, city.registry.len());
        assert_eq!(from_flows.num_edges(), from_trips.num_edges());
        for s in 0..from_flows.num_nodes() {
            for (d, w) in from_flows.neighbors(s) {
                assert!(
                    (from_trips.weight(s, d) - w).abs() < 1e-4,
                    "edge {s}→{d}: {} vs {w}",
                    from_trips.weight(s, d)
                );
            }
        }
    }

    #[test]
    fn trip_correlation_graph_matches_flow_series_builder() {
        let city = SyntheticCity::generate(CityConfig::test_tiny(29));
        let flows = FlowSeries::from_trips(
            &city.trips,
            city.registry.len(),
            city.config.days,
            city.config.slots_per_day,
        )
        .unwrap();
        let from_flows = correlation_graph(&flows, 0, flows.num_slots(), 0.3);
        let from_trips = trip_correlation_graph(
            &city.trips,
            city.registry.len(),
            city.config.days,
            city.config.slots_per_day,
            0.3,
        );
        assert_eq!(from_flows.num_edges(), from_trips.num_edges());
        for s in 0..from_flows.num_nodes() {
            for (d, w) in from_flows.neighbors(s) {
                assert!(
                    (from_trips.weight(s, d) - w).abs() < 1e-4,
                    "edge {s}→{d}: {} vs {w}",
                    from_trips.weight(s, d)
                );
            }
        }
    }

    #[test]
    fn union_symmetric_covers_both_inputs_both_directions() {
        let a = DiGraph::from_edges(4, &[(0, 1, 2.0), (2, 2, 9.0)]);
        let b = DiGraph::from_edges(4, &[(1, 0, 3.0), (2, 3, 1.0)]);
        let u = a.union_symmetric(&b);
        // {0,1} accumulates 2.0 (a, both ways) + 3.0 (b, both ways).
        assert!((u.weight(0, 1) - 5.0).abs() < 1e-6);
        assert!((u.weight(1, 0) - 5.0).abs() < 1e-6);
        assert!((u.weight(2, 3) - 1.0).abs() < 1e-6);
        assert!((u.weight(3, 2) - 1.0).abs() < 1e-6);
        // Self-loops are structure-irrelevant to a partition and are dropped.
        assert!(!u.has_edge(2, 2));
    }
}
