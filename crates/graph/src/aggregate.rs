// lint: allow-file(L004): group indices are validated against row count at
// pool construction.
//! Neighbourhood aggregators for the §VII-G aggregator study.
//!
//! STGNN-DJD's contribution includes two *custom* aggregators (flow-based
//! and attention-based, in `stgnn-core`). The paper compares them against
//! the two standard GraphSAGE aggregators implemented here:
//!
//! * **Mean** — elementwise mean of the node's own embedding and its
//!   neighbours' (Hamilton et al. 2017).
//! * **Max** — each embedding passes through a shared fully-connected layer,
//!   then an elementwise max-pool over the neighbourhood.

use crate::digraph::DiGraph;
use rand::Rng;
use stgnn_tensor::autograd::{Graph, ParamSet, Var};
use stgnn_tensor::nn::Linear;
use stgnn_tensor::{par, Shape, Tensor};

/// Mean aggregator: `Aggr_i = mean({h_i} ∪ {h_j : j ∈ N(i)})`.
///
/// Implemented as one matmul with a precomputed row-stochastic
/// (uniform-weight) neighbourhood matrix.
pub struct MeanAggregator {
    avg: Tensor,
}

impl MeanAggregator {
    /// Builds the averaging matrix from `graph`'s out-neighbourhoods.
    /// Rows are independent, so the build chunks across the kernel pool.
    pub fn new(graph: &DiGraph) -> Self {
        let n = graph.num_nodes();
        let hoods = graph.neighborhoods_with_self();
        let mut avg = Tensor::zeros(Shape::matrix(n, n));
        par::for_each_row_chunk_mut(avg.data_mut(), n, 16, |first_row, window| {
            for (r, row) in window.chunks_mut(n).enumerate() {
                let hood = &hoods[first_row + r];
                let w = 1.0 / hood.len() as f32;
                for &j in hood {
                    row[j] = w;
                }
            }
        });
        MeanAggregator { avg }
    }

    /// Aggregates node features `h ∈ R^{n×f}`.
    pub fn forward(&self, g: &Graph, h: &Var) -> Var {
        g.leaf(self.avg.clone()).matmul(h)
    }
}

/// Max aggregator: `Aggr_i = max({ FC(h_u) : u ∈ {i} ∪ N(i) })`, elementwise.
pub struct MaxAggregator {
    fc: Linear,
    hoods: Vec<Vec<usize>>,
}

impl MaxAggregator {
    /// Builds the aggregator with a shared `dim → dim` transform.
    pub fn new(
        params: &mut ParamSet,
        rng: &mut impl Rng,
        name: &str,
        graph: &DiGraph,
        dim: usize,
    ) -> Self {
        MaxAggregator {
            fc: Linear::new(params, rng, name, dim, dim, true),
            hoods: graph.neighborhoods_with_self(),
        }
    }

    /// Aggregates node features `h ∈ R^{n×f}`.
    pub fn forward(&self, g: &Graph, h: &Var) -> Var {
        self.fc.forward(g, h).relu().rows_max_pool(&self.hoods)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph() -> DiGraph {
        DiGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)])
    }

    #[test]
    fn mean_aggregator_averages_neighborhood() {
        let agg = MeanAggregator::new(&graph());
        let g = Graph::new();
        let h = g.leaf(Tensor::from_rows(&[&[2.0], &[4.0], &[9.0]]));
        let out = agg.forward(&g, &h).value();
        assert!((out.get2(0, 0) - 3.0).abs() < 1e-6); // mean(2,4)
        assert!((out.get2(1, 0) - 6.5).abs() < 1e-6); // mean(4,9)
        assert!((out.get2(2, 0) - 9.0).abs() < 1e-6); // isolated → self
    }

    #[test]
    fn max_aggregator_shapes_and_monotonicity() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(9);
        let agg = MaxAggregator::new(&mut ps, &mut rng, "max", &graph(), 2);
        let g = Graph::new();
        let h = g.leaf(Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]));
        let out = agg.forward(&g, &h);
        assert_eq!(out.value().shape().dims(), &[3, 2]);
        // Row 0 pools {0,1}: must dominate each pooled row elementwise.
        let pooled = out.value();
        let fc_out = agg.fc.forward(&g, &h).relu().value();
        for c in 0..2 {
            let expect = fc_out.get2(0, c).max(fc_out.get2(1, c));
            assert!((pooled.get2(0, c) - expect).abs() < 1e-6);
        }
    }

    /// The graph-layer half of the `tensor::par` determinism contract:
    /// building and applying the averaging matrix must be bit-for-bit
    /// identical at 1 thread and 4 threads, even on graphs large enough to
    /// cross the parallel dispatch thresholds.
    #[test]
    fn mean_aggregator_is_bitwise_identical_across_thread_counts() {
        let n = 80;
        let edges: Vec<(usize, usize, f32)> = (0..n)
            .flat_map(|i| {
                (1..=5usize).map(move |k| (i, (i * 7 + k * 13) % n, 1.0 + (k as f32) * 0.5))
            })
            .collect();
        let graph = DiGraph::from_edges(n, &edges);
        let h = Tensor::from_vec(
            Shape::matrix(n, 3),
            (0..n * 3)
                .map(|i| (i as f32 * 0.37).sin())
                .collect::<Vec<_>>(),
        )
        .unwrap();

        let run = || {
            let agg = MeanAggregator::new(&graph);
            let g = Graph::new();
            let out = agg.forward(&g, &g.leaf(h.clone())).value();
            (agg.avg, out)
        };
        stgnn_tensor::par::set_thread_override(Some(1));
        let (avg1, out1) = run();
        stgnn_tensor::par::set_thread_override(Some(4));
        let (avg4, out4) = run();
        stgnn_tensor::par::set_thread_override(None);
        assert_eq!(avg1.data(), avg4.data(), "avg matrix differs by threads");
        assert_eq!(out1.data(), out4.data(), "forward differs by threads");
    }

    #[test]
    fn max_aggregator_is_differentiable() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(10);
        let agg = MaxAggregator::new(&mut ps, &mut rng, "max", &graph(), 2);
        // Force positive pre-activations so the ReLU cannot block all paths.
        ps.params()[0].set_value(Tensor::from_rows(&[&[1.0, 0.5], &[0.5, 1.0]]));
        ps.params()[1].set_value(Tensor::from_rows(&[&[0.1, 0.1]]));
        let g = Graph::new();
        let h = g.leaf(Tensor::ones(Shape::matrix(3, 2)));
        agg.forward(&g, &h).sum_all().backward();
        assert!(ps.grad_norm() > 0.0, "no gradient reached the FC layer");
    }
}
