// lint: allow-file(L002, L004): adjacency/CSR buffers are sized n*n (or by
// degree sums) immediately before the loops that index them; `from_vec`
// receives vectors of exactly that length.
//! A compact weighted digraph in CSR form.

use stgnn_tensor::{par, Error, Shape, Tensor};

/// A directed weighted graph over nodes `0..n` stored in compressed sparse
/// row form. Edges are `(src → dst, weight)`; station graphs in this
/// reproduction are small (n in the tens to hundreds), so dense exports for
/// GNN layers are cheap, but CSR keeps neighbour iteration allocation-free
/// for aggregators and case-study queries.
#[derive(Debug, Clone)]
pub struct DiGraph {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    weights: Vec<f32>,
}

impl DiGraph {
    /// Builds a graph from an edge list. Duplicate edges accumulate their
    /// weights; self-loops are allowed.
    ///
    /// # Panics
    /// Panics when an endpoint is out of `0..n`.
    pub fn from_edges(n: usize, edges: &[(usize, usize, f32)]) -> Self {
        let mut counts = vec![0usize; n + 1];
        for &(s, d, _) in edges {
            assert!(s < n && d < n, "edge ({s},{d}) out of bounds for {n} nodes");
            counts[s + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts;
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0usize; edges.len()];
        let mut weights = vec![0.0f32; edges.len()];
        for &(s, d, w) in edges {
            let at = cursor[s];
            col_idx[at] = d;
            weights[at] = w;
            cursor[s] += 1;
        }
        // Merge duplicates within each row for deterministic weights.
        let mut g = DiGraph {
            n,
            row_ptr,
            col_idx,
            weights,
        };
        g.dedup_rows();
        g
    }

    /// Builds a graph from a dense adjacency matrix, keeping entries with
    /// `|w| > threshold`.
    pub fn from_dense(adj: &Tensor, threshold: f32) -> Self {
        let (r, c) = adj
            .shape()
            .as_matrix("from_dense")
            .expect("adjacency must be square");
        assert_eq!(r, c, "adjacency must be square, got {r}×{c}");
        let mut edges = Vec::new();
        for i in 0..r {
            for (j, &w) in adj.row(i).iter().enumerate() {
                if w.abs() > threshold {
                    edges.push((i, j, w));
                }
            }
        }
        Self::from_edges(r, &edges)
    }

    fn dedup_rows(&mut self) {
        let mut new_ptr = vec![0usize; self.n + 1];
        let mut new_idx = Vec::with_capacity(self.col_idx.len());
        let mut new_w = Vec::with_capacity(self.weights.len());
        for s in 0..self.n {
            let lo = self.row_ptr[s];
            let hi = self.row_ptr[s + 1];
            let mut row: Vec<(usize, f32)> = self.col_idx[lo..hi]
                .iter()
                .copied()
                .zip(self.weights[lo..hi].iter().copied())
                .collect();
            row.sort_by_key(|&(d, _)| d);
            let mut merged: Vec<(usize, f32)> = Vec::with_capacity(row.len());
            for (d, w) in row {
                match merged.last_mut() {
                    Some((ld, lw)) if *ld == d => *lw += w,
                    _ => merged.push((d, w)),
                }
            }
            for (d, w) in merged {
                new_idx.push(d);
                new_w.push(w);
            }
            new_ptr[s + 1] = new_idx.len();
        }
        self.row_ptr = new_ptr;
        self.col_idx = new_idx;
        self.weights = new_w;
    }

    /// The symmetrised union of two graphs over the same node set: edge
    /// `{i, j}` appears in both directions when either input carries `i → j`
    /// or `j → i`, and its weight is the sum of every directed contribution.
    /// This is the adjacency the `stgnn-scale` shard planner cuts: a
    /// dependency in either the flow graph or the correlation graph must be
    /// respected regardless of direction, and self-loops are irrelevant to a
    /// partition, so they are dropped.
    ///
    /// # Panics
    /// Panics when the two graphs have different node counts.
    pub fn union_symmetric(&self, other: &DiGraph) -> DiGraph {
        assert_eq!(
            self.n, other.n,
            "union over mismatched node sets ({} vs {})",
            self.n, other.n
        );
        let mut edges = Vec::new();
        for g in [self, other] {
            for s in 0..g.n {
                for (d, w) in g.neighbors(s) {
                    if s == d {
                        continue;
                    }
                    edges.push((s, d, w));
                    edges.push((d, s, w));
                }
            }
        }
        DiGraph::from_edges(self.n, &edges)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of (deduplicated) edges.
    pub fn num_edges(&self) -> usize {
        self.col_idx.len()
    }

    /// Out-neighbours of `s` with weights.
    pub fn neighbors(&self, s: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let lo = self.row_ptr[s];
        let hi = self.row_ptr[s + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    /// Out-degree of `s`.
    pub fn out_degree(&self, s: usize) -> usize {
        self.row_ptr[s + 1] - self.row_ptr[s]
    }

    /// Weight of edge `s → d`, 0.0 when absent.
    pub fn weight(&self, s: usize, d: usize) -> f32 {
        self.neighbors(s)
            .find(|&(j, _)| j == d)
            .map_or(0.0, |(_, w)| w)
    }

    /// True when edge `s → d` exists.
    pub fn has_edge(&self, s: usize, d: usize) -> bool {
        self.neighbors(s).any(|(j, _)| j == d)
    }

    /// Dense adjacency matrix `A[i][j] = w(i→j)`.
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::zeros(Shape::matrix(self.n, self.n));
        let buf = out.data_mut();
        for s in 0..self.n {
            for (d, w) in self.neighbors(s) {
                buf[s * self.n + d] = w;
            }
        }
        out
    }

    /// Symmetric GCN normalisation `D^{-1/2} (A + I) D^{-1/2}` over the
    /// binarised adjacency (Kipf–Welling). Dense output for GNN layers.
    pub fn gcn_normalized(&self) -> Tensor {
        let n = self.n;
        let mut a = vec![0.0f32; n * n];
        for s in 0..n {
            a[s * n + s] = 1.0;
            for (d, _) in self.neighbors(s) {
                a[s * n + d] = 1.0;
            }
        }
        let mut deg = vec![0.0f32; n];
        for i in 0..n {
            deg[i] = a[i * n..(i + 1) * n].iter().sum::<f32>();
        }
        let inv_sqrt: Vec<f32> = deg.iter().map(|&d| 1.0 / d.sqrt()).collect();
        par::for_each_row_chunk_mut(&mut a, n, 16, |first_row, window| {
            for (r, row) in window.chunks_mut(n).enumerate() {
                let si = inv_sqrt[first_row + r];
                for (v, &sj) in row.iter_mut().zip(&inv_sqrt) {
                    *v *= si * sj;
                }
            }
        });
        Tensor::from_vec(Shape::matrix(n, n), a).expect("gcn_normalized shape")
    }

    /// Row-stochastic adjacency `D^{-1} (A + I)` over edge weights:
    /// each row is a convex combination over the out-neighbourhood plus a
    /// unit self-loop (the paper's Eq 10 normalisation).
    ///
    /// Returns [`Error::InvalidArgument`] when any edge weight is negative:
    /// a fused-flow matrix that skipped its ReLU (Eq 9) would otherwise be
    /// normalised against a sum that silently dropped the negative mass,
    /// producing rows that are no longer convex combinations of the visible
    /// weights. Callers must rectify weights before normalising.
    pub fn row_normalized(&self) -> stgnn_tensor::Result<Tensor> {
        let n = self.n;
        let mut a = vec![0.0f32; n * n];
        for s in 0..n {
            a[s * n + s] = 1.0;
            for (d, w) in self.neighbors(s) {
                if w < 0.0 {
                    return Err(Error::InvalidArgument(format!(
                        "row_normalized: negative weight {w} on edge {s}→{d}; \
                         rectify weights (Eq 9 ReLU) before normalising"
                    )));
                }
                a[s * n + d] += w;
            }
            let sum: f32 = a[s * n..(s + 1) * n].iter().sum();
            for v in &mut a[s * n..(s + 1) * n] {
                *v /= sum;
            }
        }
        Tensor::from_vec(Shape::matrix(n, n), a)
    }

    /// Binary mask of the adjacency with self-loops: 1.0 where an edge (or
    /// the diagonal) exists. Used for masked attention.
    pub fn mask_with_self_loops(&self) -> Tensor {
        let n = self.n;
        let mut m = vec![0.0f32; n * n];
        for s in 0..n {
            m[s * n + s] = 1.0;
            for (d, _) in self.neighbors(s) {
                m[s * n + d] = 1.0;
            }
        }
        Tensor::from_vec(Shape::matrix(n, n), m).expect("mask shape")
    }

    /// Neighbourhood lists including self (for grouped pooling aggregators).
    pub fn neighborhoods_with_self(&self) -> Vec<Vec<usize>> {
        (0..self.n)
            .map(|s| {
                let mut group: Vec<usize> = std::iter::once(s)
                    .chain(self.neighbors(s).map(|(d, _)| d))
                    .collect();
                group.dedup();
                group
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        DiGraph::from_edges(4, &[(0, 1, 1.0), (0, 2, 2.0), (1, 3, 1.0), (2, 3, 3.0)])
    }

    #[test]
    fn csr_roundtrip() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.weight(0, 2), 2.0);
        assert_eq!(g.weight(2, 0), 0.0);
        assert!(g.has_edge(1, 3));
        assert!(!g.has_edge(3, 1));
    }

    #[test]
    fn duplicate_edges_accumulate() {
        let g = DiGraph::from_edges(2, &[(0, 1, 1.0), (0, 1, 2.5)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.weight(0, 1), 3.5);
    }

    #[test]
    fn dense_round_trip() {
        let g = diamond();
        let dense = g.to_dense();
        let g2 = DiGraph::from_dense(&dense, 0.0);
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.weight(2, 3), 3.0);
    }

    #[test]
    fn from_dense_thresholds() {
        let adj = Tensor::from_rows(&[&[0.0, 0.05], &[0.5, 0.0]]);
        let g = DiGraph::from_dense(&adj, 0.1);
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(1, 0));
    }

    #[test]
    fn gcn_normalization_is_symmetric_and_bounded() {
        let g = diamond();
        let a = g.gcn_normalized();
        for i in 0..4 {
            assert!(a.get2(i, i) > 0.0, "self-loop missing at {i}");
            for j in 0..4 {
                assert!(a.get2(i, j) >= 0.0 && a.get2(i, j) <= 1.0);
            }
        }
        // Normalisation of the symmetrised (binary + self-loop) structure is
        // symmetric wherever both directions exist.
        assert!((a.get2(0, 0) - 1.0 / 3.0).abs() < 1e-6); // deg(0)=3 (self+2)
    }

    #[test]
    fn row_normalized_rows_are_distributions() {
        let g = diamond();
        let a = g.row_normalized().unwrap();
        for i in 0..4 {
            let sum: f32 = a.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {i} sums to {sum}");
            assert!(a.row(i).iter().all(|&v| v >= 0.0));
        }
        // node 3 has no out-edges → pure self-loop
        assert_eq!(a.get2(3, 3), 1.0);
    }

    /// Regression: negative weights used to be silently clamped to zero
    /// *after* the self-loop insert, normalising rows against a sum that no
    /// longer matched the visible weights. They must be rejected instead.
    #[test]
    fn negative_weights_rejected_in_row_normalization() {
        let g = DiGraph::from_edges(2, &[(0, 1, -5.0)]);
        let err = g.row_normalized().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("negative weight"), "unhelpful error: {msg}");
        assert!(msg.contains("0→1"), "error must name the edge: {msg}");
        // Rectified weights normalise fine.
        let ok = DiGraph::from_edges(2, &[(0, 1, 5.0)]);
        assert!(ok.row_normalized().is_ok());
    }

    #[test]
    fn mask_and_neighborhoods() {
        let g = diamond();
        let m = g.mask_with_self_loops();
        assert_eq!(m.get2(0, 0), 1.0);
        assert_eq!(m.get2(0, 1), 1.0);
        assert_eq!(m.get2(1, 0), 0.0);
        let hoods = g.neighborhoods_with_self();
        assert_eq!(hoods[0], vec![0, 1, 2]);
        assert_eq!(hoods[3], vec![3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_edge_panics() {
        DiGraph::from_edges(2, &[(0, 5, 1.0)]);
    }

    /// GCN normalisation chunks its row scaling across the kernel pool; the
    /// output must not depend on the thread count.
    #[test]
    fn gcn_normalized_is_bitwise_identical_across_thread_counts() {
        let n = 64;
        let edges: Vec<(usize, usize, f32)> = (0..n).map(|i| (i, (i * 31 + 7) % n, 1.0)).collect();
        let g = DiGraph::from_edges(n, &edges);
        stgnn_tensor::par::set_thread_override(Some(1));
        let a1 = g.gcn_normalized();
        stgnn_tensor::par::set_thread_override(Some(4));
        let a4 = g.gcn_normalized();
        stgnn_tensor::par::set_thread_override(None);
        assert_eq!(a1.data(), a4.data());
    }
}
