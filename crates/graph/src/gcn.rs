//! Kipf–Welling graph convolution layer.

use crate::digraph::DiGraph;
use rand::Rng;
use stgnn_tensor::autograd::{Graph, ParamSet, Var};
use stgnn_tensor::nn::Linear;
use stgnn_tensor::Tensor;

/// One GCN layer: `H' = σ( Â · H · W )` with `Â = D^{-1/2}(A+I)D^{-1/2}`
/// fixed at construction (the baselines use static graphs).
pub struct GcnLayer {
    adj: Tensor,
    linear: Linear,
    relu: bool,
}

impl GcnLayer {
    /// Builds a layer over `graph` with a `in_dim → out_dim` projection.
    pub fn new(
        params: &mut ParamSet,
        rng: &mut impl Rng,
        name: &str,
        graph: &DiGraph,
        in_dim: usize,
        out_dim: usize,
        relu: bool,
    ) -> Self {
        GcnLayer {
            adj: graph.gcn_normalized(),
            linear: Linear::new(params, rng, name, in_dim, out_dim, true),
            relu,
        }
    }

    /// Applies the layer to node features `h ∈ R^{n×in_dim}`.
    pub fn forward(&self, g: &Graph, h: &Var) -> Var {
        let a = g.leaf(self.adj.clone());
        let out = self.linear.forward(g, &a.matmul(h));
        if self.relu {
            out.relu()
        } else {
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stgnn_tensor::optim::{Adam, Optimizer};
    use stgnn_tensor::Shape;

    fn path_graph() -> DiGraph {
        DiGraph::from_edges(3, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)])
    }

    #[test]
    fn forward_shape() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = GcnLayer::new(&mut ps, &mut rng, "gcn", &path_graph(), 4, 2, true);
        let g = Graph::new();
        let h = g.leaf(Tensor::ones(Shape::matrix(3, 4)));
        let out = layer.forward(&g, &h);
        assert_eq!(out.value().shape().dims(), &[3, 2]);
        assert!(out.value().data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn propagates_information_from_neighbors() {
        // With identity weights, node 0's output depends on node 1's input
        // through Â but not (directly) on node 2's.
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(2);
        let layer = GcnLayer::new(&mut ps, &mut rng, "gcn", &path_graph(), 1, 1, false);
        ps.params()[0].set_value(Tensor::from_rows(&[&[1.0]]));
        ps.params()[1].set_value(Tensor::zeros(Shape::matrix(1, 1)));
        let g = Graph::new();
        let base = layer
            .forward(&g, &g.leaf(Tensor::from_rows(&[&[0.0], &[0.0], &[0.0]])))
            .value();
        let bumped = layer
            .forward(&g, &g.leaf(Tensor::from_rows(&[&[0.0], &[1.0], &[0.0]])))
            .value();
        assert!(bumped.get2(0, 0) > base.get2(0, 0), "no propagation 1→0");
        assert!(bumped.get2(2, 0) > base.get2(2, 0), "no propagation 1→2");
    }

    #[test]
    fn learns_to_smooth_labels() {
        // Fit node targets that equal the neighbourhood mean of inputs —
        // the inductive bias GCN encodes; should converge fast.
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let graph = path_graph();
        let layer = GcnLayer::new(&mut ps, &mut rng, "gcn", &graph, 1, 1, false);
        let x = Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let target = graph.gcn_normalized().matmul(&x).unwrap().mul_scalar(2.0);
        let mut opt = Adam::new(0.05);
        let mut last = f32::INFINITY;
        for _ in 0..2000 {
            let g = Graph::new();
            let out = layer.forward(&g, &g.leaf(x.clone()));
            let loss = out.sub(&g.leaf(target.clone())).square().mean_all();
            last = loss.value().scalar();
            ps.zero_grads();
            loss.backward();
            opt.step(&ps);
        }
        assert!(last < 1e-3, "gcn failed to fit smoothing: {last}");
    }
}
