//! Every Table I predictor runs through the shared harness on one dataset.

use stgnn_djd::baselines::{
    Arima, Astgcn, BaselineConfig, GBike, Gcnn, GradientBoostedTrees, HistoricalAverage,
    LstmPredictor, Mgnn, Mlp, RnnPredictor, Stsgcn,
};
use stgnn_djd::data::dataset::{BikeDataset, DatasetConfig, Split};
use stgnn_djd::data::predictor::{evaluate, DemandSupplyPredictor};
use stgnn_djd::data::synthetic::{CityConfig, SyntheticCity};
use stgnn_djd::model::{StgnnConfig, StgnnDjd};

fn dataset() -> BikeDataset {
    let city = SyntheticCity::generate(CityConfig::test_tiny(2001));
    BikeDataset::from_city(&city, DatasetConfig::small(6, 2)).expect("dataset")
}

#[test]
fn every_paper_model_fits_and_scores() {
    let data = dataset();
    let bc = BaselineConfig::test_tiny(1);
    let mut models: Vec<Box<dyn DemandSupplyPredictor>> = vec![
        Box::new(HistoricalAverage::new()),
        Box::new(Arima::new(4, 0)),
        Box::new(GradientBoostedTrees::new(bc.clone(), Default::default())),
        Box::new(Mlp::new(bc.clone())),
        Box::new(RnnPredictor::new(bc.clone())),
        Box::new(LstmPredictor::new(bc.clone())),
        Box::new(Gcnn::new(bc.clone())),
        Box::new(Mgnn::new(bc.clone())),
        Box::new(Astgcn::new(bc.clone())),
        Box::new(Stsgcn::new(bc.clone())),
        Box::new(GBike::new(bc)),
        Box::new(StgnnDjd::new(StgnnConfig::test_tiny(6, 2), data.n_stations()).expect("model")),
    ];
    let slots: Vec<usize> = data.slots(Split::Test).into_iter().take(12).collect();
    let mut seen = std::collections::HashSet::new();
    for model in &mut models {
        model
            .fit(&data)
            .unwrap_or_else(|e| panic!("{} failed to fit: {e}", model.name()));
        let row = evaluate(model.as_ref(), &data, &slots);
        assert!(row.n_slots > 0, "{} evaluated no slots", model.name());
        assert!(row.rmse_mean.is_finite(), "{} produced NaN", model.name());
        assert!(
            row.rmse_mean >= row.mae_mean - 1e-4,
            "{}: RMSE < MAE",
            model.name()
        );
        assert!(
            seen.insert(model.name().to_string()),
            "duplicate model name {}",
            model.name()
        );
    }
    assert_eq!(seen.len(), 12);
}

#[test]
fn predictions_have_station_dimension_and_are_counts() {
    let data = dataset();
    let mut ha = HistoricalAverage::new();
    ha.fit(&data).expect("fit");
    let t = data.slots(Split::Test)[0];
    let p = ha.predict(&data, t);
    assert_eq!(p.demand.len(), data.n_stations());
    assert_eq!(p.supply.len(), data.n_stations());
    assert!(p
        .demand
        .iter()
        .chain(&p.supply)
        .all(|&v| v >= 0.0 && v.is_finite()));
}
