//! End-to-end tests for the `stgnn-scale` subsystem: fleet parity against a
//! single server, the REPLICA-LOSS-DEGRADES-NOT-FAILS chaos scenario, and
//! shed observability through the replica metrics endpoint.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use stgnn_djd::data::dataset::{BikeDataset, DatasetConfig, Split};
use stgnn_djd::data::synthetic::{CityConfig, SyntheticCity};
use stgnn_djd::model::StgnnConfig;
use stgnn_djd::scale::{loadgen, Answer, Fleet, FleetConfig, LoadCurve};
use stgnn_djd::serve::client;
use stgnn_djd::serve::{ModelSpec, ServeConfig, Server};

fn dataset() -> Arc<BikeDataset> {
    let city = SyntheticCity::generate(CityConfig::test_tiny(99));
    Arc::new(BikeDataset::from_city(&city, DatasetConfig::small(6, 2)).unwrap())
}

fn spec_and_weights(data: &BikeDataset, seed: u64) -> (ModelSpec, Vec<u8>) {
    let mut config = StgnnConfig::test_tiny(6, 2);
    config.seed = seed;
    let spec = ModelSpec::new(config, data.n_stations());
    let bytes = spec.materialize().unwrap().weights_to_bytes();
    (spec, bytes)
}

/// PARITY-FLEET: a replicated fleet built from one checkpoint answers every
/// station byte-identically to a single unsharded server holding the same
/// checkpoint — routing must be invisible in the numbers. (Forward passes
/// are thread-count invariant, so the comparison is exact, not approximate.)
#[test]
fn fleet_answers_match_a_single_server_byte_for_byte() {
    let data = dataset();
    let (spec, weights) = spec_and_weights(&data, 7);
    let slot = data.slots(Split::Test)[0];

    // Reference: one plain server.
    let server = Server::start(Arc::clone(&data), ServeConfig::default()).unwrap();
    server
        .registry()
        .register("stgnn", spec.clone(), weights.clone())
        .unwrap();
    let addr = server.addr();

    // Candidate: a 3-replica fleet from the same checkpoint.
    let config = FleetConfig {
        deadline_ms: 30_000,
        ..FleetConfig::default()
    };
    let fleet = Fleet::replicated(Arc::clone(&data), &spec, &weights, 3, &config).unwrap();

    for station in 0..data.n_stations() {
        let single = client::get(
            addr,
            &format!("/predict?model=stgnn&slot={slot}&station={station}&deadline_ms=30000"),
        )
        .unwrap();
        assert_eq!(single.status, 200, "{}", single.body);
        let routed = fleet.predict(station, slot).unwrap();
        assert_eq!(routed.status, 200, "{}", routed.body);
        assert_eq!(routed.source, Answer::Model, "station {station} degraded");
        for field in ["demand", "supply", "station", "slot"] {
            assert_eq!(
                routed_field(&routed.body, field),
                single.json_field(field).unwrap(),
                "station {station} field {field} diverged:\nfleet:  {}\nsingle: {}",
                routed.body,
                single.body
            );
        }
    }
}

fn routed_field(body: &str, field: &str) -> String {
    client::Response {
        status: 200,
        body: body.to_string(),
    }
    .json_field(field)
    .unwrap()
}

/// The chaos scenario REPLICA-LOSS-DEGRADES-NOT-FAILS: crash a replica in
/// the middle of a diurnal load run. Every response must stay parseable
/// (no torn bodies), no request may surface a 5xx, and degradation must
/// stay within the shed budget — loss of capacity shows up as HA answers,
/// never as failures.
#[test]
fn replica_loss_degrades_but_never_fails() {
    let data = dataset();
    let (spec, weights) = spec_and_weights(&data, 11);
    let config = FleetConfig {
        deadline_ms: 5_000,
        queue_capacity: 64,
        ..FleetConfig::default()
    };
    let fleet =
        Arc::new(Fleet::replicated(Arc::clone(&data), &spec, &weights, 3, &config).unwrap());
    let slots = data.slots(Split::Test);

    let curve = LoadCurve {
        duration_ms: 1_200,
        base_rps: 40.0,
        rush_multiplier: 3.0,
        senders: 4,
        seed: 13,
        slo_ms: 2_000,
    };

    // Kill replica 0 one third into the run, while requests are in flight.
    let killer = {
        let fleet = Arc::clone(&fleet);
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(400));
            fleet.crash(0);
        })
    };
    let report = loadgen::run(&fleet, &curve, &slots, "chaos-replica-loss");
    killer.join().unwrap();

    assert!(report.sent > 0);
    // No torn responses, no 5xx: every request was answered 200 with a
    // parseable body (errors counts non-200s and router failures).
    assert_eq!(
        report.errors,
        0,
        "replica loss surfaced errors: {}",
        report.to_json()
    );
    // Loss of one of three replicas must not collapse service: the model
    // path still answers the bulk of the traffic.
    assert!(
        report.ok_model + report.replica_ha > report.sent * 8 / 10,
        "too much degradation after one replica loss: {}",
        report.to_json()
    );
    // The crash was actually noticed (sticky down-marking, ring failover).
    assert!(fleet.is_down(0), "crash went unnoticed by the router");
    assert!(!fleet.is_down(1) && !fleet.is_down(2));
}

/// The same scenario under an injected dispatch fault instead of a real
/// crash: the first dispatch I/O error triggers failover, not a 5xx.
#[test]
fn injected_dispatch_fault_degrades_but_never_fails() {
    use stgnn_djd::faults::{scoped, FaultPlan, FaultSpec, Trigger};

    let data = dataset();
    let (spec, weights) = spec_and_weights(&data, 17);
    let config = FleetConfig {
        deadline_ms: 5_000,
        ..FleetConfig::default()
    };
    let fleet = Fleet::replicated(Arc::clone(&data), &spec, &weights, 2, &config).unwrap();
    let slot = data.slots(Split::Test)[0];

    let _chaos =
        scoped(FaultPlan::new().with("scale::dispatch", FaultSpec::io(Trigger::FirstN(1))));
    for station in 0..data.n_stations() {
        let out = fleet.predict(station, slot).unwrap();
        assert_eq!(out.status, 200, "station {station}: {}", out.body);
        assert_ne!(out.source, Answer::Error);
    }
    assert_eq!(fleet.stats().failovers(), 1);
    assert_eq!(
        fleet.stats().loss_ha(),
        0,
        "one fault must not orphan traffic"
    );
}

/// Shed observability: a zero-capacity fleet sheds at admission, the
/// outcome is tagged, and the shed shows up on the replica's own
/// `/metrics` line protocol (`serve_shed_total`) with the queue gauge
/// back at zero.
#[test]
fn sheds_are_tagged_and_visible_in_replica_metrics() {
    let data = dataset();
    let (spec, weights) = spec_and_weights(&data, 23);
    let config = FleetConfig {
        queue_capacity: 0,
        ..FleetConfig::default()
    };
    let fleet = Fleet::replicated(Arc::clone(&data), &spec, &weights, 1, &config).unwrap();
    let slot = data.slots(Split::Test)[0];

    let out = fleet.predict(0, slot).unwrap();
    assert_eq!(out.status, 200);
    assert_eq!(out.source, Answer::ShedHa);
    assert!(out.body.contains(r#""degraded":true"#), "{}", out.body);
    assert!(out.body.contains(r#""source":"shed-ha""#), "{}", out.body);

    let metrics = client::get(fleet.replica_addr(0).unwrap(), "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    assert!(
        metrics.body.contains("serve_shed_total 1"),
        "shed not visible in line protocol:\n{}",
        metrics.body
    );
    assert!(
        metrics.body.contains("serve_queue_depth 0"),
        "queue gauge leaked:\n{}",
        metrics.body
    );
}
