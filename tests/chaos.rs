//! Chaos suite: scripted fault scenarios driven end-to-end through the
//! public APIs, each asserting a **named recovery invariant**. The
//! `stgnn-faults` failpoint registry makes every scenario deterministic —
//! the same plan against the same execution injects the same faults, so
//! these tests assert exact recovery behaviour, not "it usually survives".
//!
//! Every test installs its plan through [`faults::scoped`], which holds a
//! process-global lock: scenarios serialise against each other and against
//! any other test that injects faults, and the plan is cleared on drop even
//! when the scenario panics on purpose.
//!
//! Invariants covered here:
//!
//! | Invariant                          | Scenario                          |
//! |------------------------------------|-----------------------------------|
//! | TRAIN-CRASH-RESUME                 | panic mid-epoch, resume, bit-same |
//! | ATOMIC-WRITE-NEVER-TEARS           | torn rename leaves old weights    |
//! | SERVE-PANIC-IS-CONTAINED           | forward panic → error reply, live |
//! | SWAP-FAULT-KEEPS-OLD-WEIGHTS       | failed hot-swap serves old model  |
//! | DELAY-FAULTS-ARE-SEMANTICALLY-INERT| delay-only plan changes no bits   |
//! | CORRUPT-CHECKPOINT-IS-REJECTED     | damage → typed error, no panic    |
//! | PROMOTE-CRASH-RESUMES              | kill mid-promotion; registry holds|
//! |                                    | exactly one model, loop resumes   |
//! | POISONED-CANDIDATE-ROLLS-BACK      | RMSE watchdog restores incumbent  |
//! |                                    | bit-identically, zero serve errors|
//! | ONLINE-CRASH-ANY-PHASE-RESUMES     | kill at every `online::*` seam in |
//! |                                    | turn; resume to a named state     |

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use stgnn_djd::data::dataset::{BikeDataset, DatasetConfig, Split};
use stgnn_djd::data::error::Error;
use stgnn_djd::data::synthetic::{CityConfig, SyntheticCity};
use stgnn_djd::faults::{scoped, FaultPlan, FaultSpec, Trigger};
use stgnn_djd::model::{StgnnConfig, StgnnDjd, Trainer};
use stgnn_djd::online::{CycleOutcome, OnlineConfig, OnlineLoop, Phase};
use stgnn_djd::serve::client;
use stgnn_djd::serve::registry::ModelRegistry;
use stgnn_djd::serve::{MetricsSnapshot, ModelSpec, ServeConfig, Server};

fn dataset(seed: u64) -> BikeDataset {
    let city = SyntheticCity::generate(CityConfig::test_tiny(seed));
    BikeDataset::from_city(&city, DatasetConfig::small(6, 2)).unwrap()
}

fn tiny_config() -> StgnnConfig {
    let mut config = StgnnConfig::test_tiny(6, 2);
    config.epochs = 2;
    config.max_batches_per_epoch = Some(4);
    config
}

fn scratch_dir(label: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("stgnn-chaos-{}-{label}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn loss_bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn param_bits(model: &StgnnDjd) -> Vec<Vec<u32>> {
    model
        .params()
        .params()
        .iter()
        .map(|p| p.value().data().iter().map(|x| x.to_bits()).collect())
        .collect()
}

/// Named invariant: TRAIN-CRASH-RESUME. A training process killed by a
/// *panic* mid-epoch (the harshest crash we can inject in-process) leaves a
/// valid checkpoint behind, and resuming it in a fresh model reproduces the
/// uninterrupted run's losses bit for bit.
#[test]
fn panic_crash_then_resume_matches_uninterrupted_run() {
    let data = dataset(141);
    let config = tiny_config();

    // Reference: the run that never crashes.
    let mut gold = StgnnDjd::new(config.clone(), data.n_stations()).unwrap();
    let gold_report = {
        let _quiet = scoped(FaultPlan::new());
        Trainer::new(config.clone())
            .train(&mut gold, &data)
            .unwrap()
    };

    // Crash run: checkpoint every 2 batches, panic at the 6th step (epoch 1,
    // batch 2 — two steps past the last epoch-0 checkpoint).
    let path = scratch_dir("panic-resume").join("train.ckpt");
    let trainer = Trainer::new(config.clone()).with_checkpointing(&path, 2);
    {
        let _chaos =
            scoped(FaultPlan::new().with("trainer::step", FaultSpec::panic(Trigger::OnHit(6))));
        let mut doomed = StgnnDjd::new(config.clone(), data.n_stations()).unwrap();
        let crash = catch_unwind(AssertUnwindSafe(|| trainer.train(&mut doomed, &data)));
        assert!(crash.is_err(), "the injected panic did not fire");
    }
    assert!(path.exists(), "no checkpoint survived the crash");

    // Recovery: a fresh model (a new process would rebuild it the same way)
    // resumes from the checkpoint and lands exactly where gold did.
    let mut resumed = StgnnDjd::new(config, data.n_stations()).unwrap();
    let report = {
        let _quiet = scoped(FaultPlan::new());
        trainer.resume_from(&path, &mut resumed, &data).unwrap()
    };
    assert!(report.resumed);
    assert_eq!(
        loss_bits(&report.train_losses),
        loss_bits(&gold_report.train_losses)
    );
    assert_eq!(
        loss_bits(&report.val_losses),
        loss_bits(&gold_report.val_losses)
    );
    assert_eq!(param_bits(&gold), param_bits(&resumed));
}

/// Named invariant: ATOMIC-WRITE-NEVER-TEARS. A fault at any stage of a
/// weight save — here the final rename — leaves the previous file byte-
/// identical and litters no temp files; a reader can only ever observe the
/// old weights or the new ones, never a torn mix.
#[test]
fn torn_weight_save_leaves_the_old_checkpoint_intact() {
    let data = dataset(142);
    let config = tiny_config();
    let dir = scratch_dir("torn-save");
    let path = dir.join("weights.bin");

    let old = StgnnDjd::new(config.clone(), data.n_stations()).unwrap();
    let mut newer_cfg = config.clone();
    newer_cfg.seed = config.seed + 1;
    let newer = StgnnDjd::new(newer_cfg, data.n_stations()).unwrap();
    assert_ne!(old.weights_to_bytes(), newer.weights_to_bytes());

    {
        let _quiet = scoped(FaultPlan::new());
        old.save_weights(&path).unwrap();
    }

    for site in [
        "atomic_write::rename",
        "atomic_write::fsync",
        "atomic_write::write",
    ] {
        let _chaos = scoped(FaultPlan::new().with(site, FaultSpec::io(Trigger::EveryHit)));
        let err = newer.save_weights(&path).unwrap_err();
        assert!(err.to_string().contains(site), "{err}");
        // The visible file still holds the OLD weights, bit for bit.
        let mut reread = StgnnDjd::new(config.clone(), data.n_stations()).unwrap();
        reread.load_weights(&path).unwrap();
        assert_eq!(
            reread.weights_to_bytes(),
            old.weights_to_bytes(),
            "faulted {site} tore the visible file"
        );
    }
    // No temp-file litter: the failed attempts cleaned up after themselves.
    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp."))
        .collect();
    assert!(leftovers.is_empty(), "temp litter: {leftovers:?}");
}

fn serve_fixture(seed: u64) -> (Arc<BikeDataset>, Server, usize) {
    let city = SyntheticCity::generate(CityConfig::test_tiny(seed));
    let data = Arc::new(BikeDataset::from_city(&city, DatasetConfig::small(6, 2)).unwrap());
    let server = Server::start(Arc::clone(&data), ServeConfig::default()).unwrap();
    let mut config = StgnnConfig::test_tiny(6, 2);
    config.seed = 7;
    let spec = ModelSpec::new(config, data.n_stations());
    let bytes = spec.materialize().unwrap().weights_to_bytes();
    server.registry().register("stgnn", spec, bytes).unwrap();
    let t = data.slots(Split::Test)[0];
    (data, server, t)
}

/// Named invariant: SERVE-PANIC-IS-CONTAINED. A panic inside the batched
/// forward pass is converted into an error reply for the batch that hit it;
/// the worker thread survives and the very next request is served normally.
#[test]
fn forward_pass_panic_fails_one_request_and_the_server_keeps_serving() {
    let _chaos =
        scoped(FaultPlan::new().with("serve::forward", FaultSpec::panic(Trigger::OnHit(1))));
    let (_data, mut server, t) = serve_fixture(143);
    let addr = server.addr();
    let path = format!("/predict?model=stgnn&slot={t}&deadline_ms=30000");

    let hit = client::get(addr, &path).unwrap();
    assert_eq!(hit.status, 400, "{}", hit.body);
    assert!(hit.body.contains("forward pass failed"), "{}", hit.body);

    // The worker contained the panic; the retry goes through the full
    // forward path (the failed batch never populated the cache).
    let ok = client::get(addr, &path).unwrap();
    assert_eq!(ok.status, 200, "{}", ok.body);
    assert_eq!(ok.json_field("degraded").unwrap(), "false");

    let s = server.metrics_snapshot();
    // The one failed request is counted at the worker and again by the HTTP
    // reply layer; the successful retry contributes the one forward pass.
    assert_eq!(s.errors, 2, "snapshot: {s:?}");
    assert_eq!(s.requests, 2, "snapshot: {s:?}");
    assert_eq!(s.forward_passes, 1, "snapshot: {s:?}");
    assert_eq!(stgnn_djd::faults::fired("serve::forward"), 1);
    server.shutdown();
}

/// Named invariant: SWAP-FAULT-KEEPS-OLD-WEIGHTS. A fault during hot-swap
/// rejects the swap with a structured error; the registered version does
/// not advance and the old weights answer every subsequent query unchanged.
#[test]
fn failed_hot_swap_keeps_serving_the_old_weights() {
    let _chaos = scoped(FaultPlan::new().with("registry::swap", FaultSpec::io(Trigger::EveryHit)));
    let (data, mut server, t) = serve_fixture(144);
    let addr = server.addr();
    let path = format!("/predict?model=stgnn&slot={t}&deadline_ms=30000");

    let before = client::get(addr, &path).unwrap();
    assert_eq!(before.status, 200, "{}", before.body);
    let baseline = before.json_field("demand").unwrap();

    let mut other = StgnnConfig::test_tiny(6, 2);
    other.seed = 999;
    let candidate = StgnnDjd::new(other, data.n_stations())
        .unwrap()
        .weights_to_bytes();
    let swap = client::post(addr, "/models/stgnn/swap", &candidate).unwrap();
    assert_ne!(
        swap.status, 200,
        "swap should have been rejected: {}",
        swap.body
    );

    let models = client::get(addr, "/models").unwrap();
    assert!(
        models.body.contains(r#""name":"stgnn","version":1"#),
        "version advanced despite the failed swap: {}",
        models.body
    );
    let after = client::get(addr, &path).unwrap();
    assert_eq!(after.status, 200, "{}", after.body);
    assert_eq!(
        after.json_field("demand").unwrap(),
        baseline,
        "answers changed after a swap that reported failure"
    );
    server.shutdown();
}

/// Named invariant: DELAY-FAULTS-ARE-SEMANTICALLY-INERT. A delay-only plan
/// (the plan CI runs the whole suite under) slows execution down but must
/// not change a single bit of any result — training under seeded delays on
/// the hot seams reproduces the undelayed run exactly.
#[test]
fn delay_only_plan_changes_timing_but_not_one_bit_of_the_results() {
    let data = dataset(145);
    let config = tiny_config();

    let mut quiet_model = StgnnDjd::new(config.clone(), data.n_stations()).unwrap();
    let quiet = {
        let _quiet = scoped(FaultPlan::new());
        Trainer::new(config.clone())
            .train(&mut quiet_model, &data)
            .unwrap()
    };

    let mut slow_model = StgnnDjd::new(config.clone(), data.n_stations()).unwrap();
    let slow = {
        let _chaos = scoped(
            FaultPlan::new()
                .with("trainer::step", FaultSpec::delay(2, Trigger::EveryHit))
                .with(
                    "plan::replay",
                    FaultSpec {
                        action: stgnn_djd::faults::FaultAction::Delay { ms: 1 },
                        trigger: Trigger::WithProb { p: 0.25, seed: 7 },
                    },
                )
                .with("pool::alloc", FaultSpec::delay(1, Trigger::OnHit(3))),
        );
        Trainer::new(config).train(&mut slow_model, &data).unwrap()
    };

    assert_eq!(
        loss_bits(&quiet.train_losses),
        loss_bits(&slow.train_losses)
    );
    assert_eq!(loss_bits(&quiet.val_losses), loss_bits(&slow.val_losses));
    assert_eq!(quiet.best_val_loss.to_bits(), slow.best_val_loss.to_bits());
    assert_eq!(param_bits(&quiet_model), param_bits(&slow_model));
}

/// Named invariant: CORRUPT-CHECKPOINT-IS-REJECTED. Every class of on-disk
/// damage — truncation, a flipped bit, a version-skewed header, plain
/// garbage — surfaces as a typed error from `resume_from`; the model being
/// resumed into is never partially loaded and nothing panics.
#[test]
fn damaged_checkpoints_are_rejected_without_touching_the_model() {
    let _quiet = scoped(FaultPlan::new());
    let data = dataset(146);
    let mut config = tiny_config();
    config.epochs = 1;
    let dir = scratch_dir("corrupt");
    let path = dir.join("train.ckpt");

    let trainer = Trainer::new(config.clone()).with_checkpointing(&path, 1);
    let mut model = StgnnDjd::new(config.clone(), data.n_stations()).unwrap();
    trainer.train(&mut model, &data).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    let damage: [(&str, Vec<u8>, &str); 4] = [
        (
            "truncated",
            pristine[..pristine.len() - 16].to_vec(),
            "truncated",
        ),
        (
            "bit-flipped",
            {
                let mut b = pristine.clone();
                let last = b.len() - 2;
                b[last] ^= 0x01;
                b
            },
            "checksum mismatch",
        ),
        (
            "version-skewed",
            {
                let text = String::from_utf8(pristine.clone()).unwrap();
                text.replacen("stgnn-ckpt v1", "stgnn-ckpt v9", 1)
                    .into_bytes()
            },
            "version skew",
        ),
        (
            "garbage",
            b"not a checkpoint at all\n".to_vec(),
            "checkpoint",
        ),
    ];

    for (label, bytes, expect) in damage {
        std::fs::write(&path, bytes).unwrap();
        let mut victim = StgnnDjd::new(config.clone(), data.n_stations()).unwrap();
        let before = param_bits(&victim);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            trainer.resume_from(&path, &mut victim, &data)
        }));
        let result = outcome.unwrap_or_else(|_| panic!("{label} checkpoint panicked the loader"));
        let err = result.expect_err(label);
        assert!(
            err.to_string().contains(expect),
            "{label}: expected {expect:?} in {err}"
        );
        assert!(
            !matches!(err, Error::Io(_)) || label == "garbage" || label == "truncated",
            "{label} should be a typed rejection, got {err}"
        );
        assert_eq!(before, param_bits(&victim), "{label} partially loaded");
    }

    // The pristine bytes still resume fine — the file itself was never the
    // problem.
    std::fs::write(&path, pristine).unwrap();
    let mut fresh = StgnnDjd::new(config, data.n_stations()).unwrap();
    assert!(trainer.resume_from(&path, &mut fresh, &data).is_ok());
}

// ---------------------------------------------------------------------------
// Online-loop chaos: the crash-safe train-while-serving pipeline.
// ---------------------------------------------------------------------------

/// A 12-day seeded city and an [`OnlineConfig`] whose 8-day window gives the
/// per-cycle fine-tune dataset a 6/1/1 day train/val/test split.
fn online_fixture(label: &str, seed: u64) -> (OnlineConfig, SyntheticCity) {
    let mut city = CityConfig::test_tiny(seed);
    city.days = 12;
    let source = SyntheticCity::generate(city);
    let dir = scratch_dir(label);
    let _ = std::fs::remove_file(dir.join("loop.state"));
    let _ = std::fs::remove_file(dir.join("finetune.ckpt"));
    let config = OnlineConfig {
        model_name: "stgnn".into(),
        window_days: 8,
        dataset: DatasetConfig::small(6, 2),
        train: tiny_config(),
        gate: Default::default(),
        watchdog: Default::default(),
        state_path: dir.join("loop.state"),
        checkpoint_path: dir.join("finetune.ckpt"),
        checkpoint_every: 8,
    };
    (config, source)
}

fn idle_metrics() -> MetricsSnapshot {
    MetricsSnapshot {
        requests: 0,
        cache_hits: 0,
        batched: 0,
        forward_passes: 0,
        fallbacks: 0,
        errors: 0,
        swaps: 0,
        shed: 0,
        queue_depth: 0,
        batch_hist: Vec::new(),
        latency_p50_us: 0,
        latency_p99_us: 0,
    }
}

/// Named invariant: PROMOTE-CRASH-RESUMES. The loop is killed (panic) at the
/// promote seam — after the candidate passed every gate, immediately before
/// the hot-swap. The registry must hold exactly the incumbent (never a torn
/// or half-swapped model), live traffic keeps being answered throughout, and
/// a restarted loop resumes from the persisted `Shadowing` phase to the
/// named `Ingesting` state and promotes atomically on its next cycle.
#[test]
fn promotion_crash_leaves_the_registry_untorn_and_the_loop_resumes() {
    // `OnHit(1)`: the first promotion attempt crashes, the post-restart one
    // sails through — one plan covers the whole scenario.
    let _chaos =
        scoped(FaultPlan::new().with("online::promote", FaultSpec::panic(Trigger::OnHit(1))));
    let (config, source) = online_fixture("online-promote-crash", 147);
    let data = Arc::new(BikeDataset::from_city(&source, DatasetConfig::small(6, 2)).unwrap());
    let mut server = Server::start(Arc::clone(&data), ServeConfig::default()).unwrap();
    let registry = Arc::clone(server.registry());
    let spec = ModelSpec::new(config.train.clone(), data.n_stations());
    let bytes_v1 = spec.materialize().unwrap().weights_to_bytes();
    registry.register("stgnn", spec, bytes_v1.clone()).unwrap();
    let addr = server.addr();
    let t = data.slots(Split::Test)[0];
    let path = format!("/predict?model=stgnn&slot={t}&deadline_ms=30000");

    {
        let mut looper = OnlineLoop::new(config.clone(), Arc::clone(&registry), &source).unwrap();
        for day in 0..7 {
            let outcome = looper.run_cycle().unwrap();
            assert!(
                matches!(outcome, CycleOutcome::WindowFilling { .. }),
                "day {day}: {outcome:?}"
            );
        }
        // Day 8 fills the window: fine-tune, gate, shadow — then die at the
        // promote seam.
        let crash = catch_unwind(AssertUnwindSafe(|| looper.run_cycle()));
        assert!(crash.is_err(), "the promote failpoint did not fire");
    }
    assert_eq!(stgnn_djd::faults::fired("online::promote"), 1);

    // Never torn: exactly the incumbent serves — version 1, the registered
    // bytes, no orphaned pin — and a live request succeeds mid-outage.
    let entry = registry.get("stgnn").unwrap();
    assert_eq!(entry.version(), 1, "registry moved despite the crash");
    assert_eq!(entry.checkpoint().bytes, bytes_v1);
    assert!(!entry.is_pinned(), "crash leaked a shadow-phase pin");
    let during = client::get(addr, &path).unwrap();
    assert_eq!(during.status, 200, "{}", during.body);

    // Restart: the persisted phase names where the loop died, recovery
    // resumes it to `Ingesting`, and the next cycle promotes atomically.
    let mut revived = OnlineLoop::new(config.clone(), Arc::clone(&registry), &source).unwrap();
    assert_eq!(revived.resumed_from(), Some(Phase::Shadowing));
    assert_eq!(revived.state().phase, Phase::Ingesting);
    let outcome = revived.run_cycle().unwrap();
    let CycleOutcome::Promoted { version, .. } = outcome else {
        panic!("expected a promotion after recovery, got {outcome:?}");
    };
    assert_eq!(version, 2);
    let entry = registry.get("stgnn").unwrap();
    assert_eq!(entry.version(), 2);
    assert_eq!(entry.previous_version(), Some(1), "rollback handle missing");
    let after = client::get(addr, &path).unwrap();
    assert_eq!(after.status, 200, "{}", after.body);
    let models = client::get(addr, "/models").unwrap();
    assert!(models.body.contains(r#""version":2"#), "{}", models.body);
    server.shutdown();
}

/// Named invariant: POISONED-CANDIDATE-ROLLS-BACK. A candidate is promoted
/// cleanly, then regresses on live traffic (injected live-RMSE spike). The
/// watchdog restores the incumbent **bit-identically** from the retained
/// handle, and the serve fleet answers every request across promotion and
/// rollback with zero errors.
#[test]
fn poisoned_candidate_rolls_back_bit_identically_with_zero_serve_errors() {
    let _quiet = scoped(FaultPlan::new());
    let (config, source) = online_fixture("online-poisoned", 148);
    let data = Arc::new(BikeDataset::from_city(&source, DatasetConfig::small(6, 2)).unwrap());
    let mut server = Server::start(Arc::clone(&data), ServeConfig::default()).unwrap();
    let registry = Arc::clone(server.registry());
    let spec = ModelSpec::new(config.train.clone(), data.n_stations());
    let bytes_v1 = spec.materialize().unwrap().weights_to_bytes();
    registry.register("stgnn", spec, bytes_v1.clone()).unwrap();
    let addr = server.addr();
    let t = data.slots(Split::Test)[0];
    let path = format!("/predict?model=stgnn&slot={t}&deadline_ms=30000");

    let mut looper = OnlineLoop::new(config, Arc::clone(&registry), &source).unwrap();
    let mut promoted = None;
    for _ in 0..9 {
        if let CycleOutcome::Promoted { version, .. } = looper.run_cycle().unwrap() {
            promoted = Some(version);
            break;
        }
    }
    assert_eq!(promoted, Some(2), "loop never promoted a candidate");

    // Load against the promoted candidate.
    for _ in 0..4 {
        let r = client::get(addr, &path).unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
    }
    let baseline = server.metrics_snapshot();

    // The candidate regresses in the wild: inject a live-RMSE spike. The
    // serve-metrics budgets are clean, so it is the RMSE watchdog that fires.
    let now = server.metrics_snapshot();
    let outcome = looper.check_watchdogs(&baseline, &now, 50.0, 1.0).unwrap();
    let CycleOutcome::RolledBack { restored, reason } = outcome else {
        panic!("watchdog did not roll back: {outcome:?}");
    };
    assert_eq!(restored, 1);
    assert!(reason.contains("RMSE watchdog"), "{reason}");

    // Bit-identical restoration: version, bytes, and the consumed handle.
    let entry = registry.get("stgnn").unwrap();
    assert_eq!(entry.version(), 1);
    assert_eq!(
        entry.checkpoint().bytes,
        bytes_v1,
        "rollback must restore the incumbent's exact bytes"
    );
    assert_eq!(entry.previous_version(), None, "handle must be consumed");
    assert_eq!(looper.state().phase, Phase::RolledBack);

    // Traffic keeps flowing across the rollback — not a single error.
    for _ in 0..4 {
        let r = client::get(addr, &path).unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
    }
    let s = server.metrics_snapshot();
    assert_eq!(s.errors, 0, "rollback surfaced serve errors: {s:?}");
    server.shutdown();
}

/// Named invariant: ONLINE-CRASH-ANY-PHASE-RESUMES. For **every** named
/// `online::*` failpoint in turn: kill the loop there, assert the registry
/// holds exactly one coherent model (the incumbent before a promotion, the
/// promoted candidate after — never a torn state), restart, and drive the
/// recovered loop through a full promotion and a watchdog rollback that
/// restores version 1 bit-identically.
#[test]
fn a_crash_at_every_online_failpoint_resumes_to_a_named_state() {
    let sites = [
        "online::ingest",
        "online::refresh",
        "online::finetune",
        "online::gate",
        "online::shadow",
        "online::promote",
        "online::rollback",
    ];
    for site in sites {
        let label = format!("online-{}", site.replace("::", "-"));
        // First hit of the armed seam crashes; the retry after restart
        // passes. All other seams stay live and un-faulted.
        let _chaos = scoped(FaultPlan::new().with(site, FaultSpec::panic(Trigger::OnHit(1))));
        let (mut config, source) = online_fixture(&label, 149);
        // This scenario asserts crash safety, not model quality: lenient
        // gate tolerances make promotion deterministic across seeds (strict
        // gate semantics are covered by the gate unit tests and the
        // POISONED-CANDIDATE scenario).
        config.gate.holdout_tolerance = 10.0;
        config.gate.shadow_tolerance = 10.0;
        let registry = Arc::new(ModelRegistry::new());
        let spec = ModelSpec::new(config.train.clone(), source.registry.len());
        let bytes_v1 = spec.materialize().unwrap().weights_to_bytes();
        registry.register("stgnn", spec, bytes_v1.clone()).unwrap();

        let mut crashed = false;
        {
            let mut looper =
                OnlineLoop::new(config.clone(), Arc::clone(&registry), &source).unwrap();
            for _ in 0..9 {
                match catch_unwind(AssertUnwindSafe(|| looper.run_cycle())) {
                    Ok(Ok(CycleOutcome::Promoted { .. })) => break,
                    Ok(Ok(_)) => continue,
                    Ok(Err(e)) => panic!("{site}: cycle errored instead of crashing: {e}"),
                    Err(_) => {
                        crashed = true;
                        break;
                    }
                }
            }
            if site == "online::rollback" {
                // The rollback seam is only reached via the watchdog after a
                // clean promotion.
                assert!(!crashed, "{site} fired before any rollback");
                let idle = idle_metrics();
                let crash = catch_unwind(AssertUnwindSafe(|| {
                    looper.check_watchdogs(&idle, &idle, 1e9, 1.0)
                }));
                assert!(crash.is_err(), "{site} did not fire");
                crashed = true;
            }
        }
        assert!(crashed, "{site} never crashed the loop");

        // Exactly one coherent model serves: its checkpoint materialises
        // cleanly, and its identity is a named pre/post-promotion version.
        let entry = registry.get("stgnn").unwrap();
        assert!(!entry.is_pinned(), "{site}: crash leaked a pin");
        let ck = entry.checkpoint();
        assert!(
            entry.spec().materialize_with(&ck).is_ok(),
            "{site}: serving checkpoint is torn"
        );
        let expect_promoted = site == "online::rollback";
        assert_eq!(
            entry.version(),
            if expect_promoted { 2 } else { 1 },
            "{site}: unexpected serving version after crash"
        );

        // Restart: recovery lands on the named resume state for the phase
        // the loop died in, and the loop then makes real progress.
        let mut revived = OnlineLoop::new(config, Arc::clone(&registry), &source).unwrap();
        assert!(revived.resumed_from().is_some(), "{site}: state file lost");
        if expect_promoted {
            assert_eq!(revived.state().phase, Phase::Promoted, "{site}");
        } else {
            assert_eq!(revived.state().phase, Phase::Ingesting, "{site}");
            let mut promoted = false;
            let mut outcomes = Vec::new();
            for _ in 0..9 {
                let outcome = revived.run_cycle().unwrap();
                if let CycleOutcome::Promoted { version, .. } = outcome {
                    assert_eq!(version, 2, "{site}");
                    promoted = true;
                    break;
                }
                outcomes.push(format!("{outcome:?}"));
            }
            assert!(
                promoted,
                "{site}: recovered loop never promoted: {outcomes:?}"
            );
        }

        // Finally the watchdog path: rollback restores version 1 with the
        // registered bytes, bit for bit — after a crash at any seam.
        let idle = idle_metrics();
        let outcome = revived.check_watchdogs(&idle, &idle, 1e9, 1.0).unwrap();
        assert!(
            matches!(outcome, CycleOutcome::RolledBack { restored: 1, .. }),
            "{site}: {outcome:?}"
        );
        let entry = registry.get("stgnn").unwrap();
        assert_eq!(entry.version(), 1, "{site}");
        assert_eq!(
            entry.checkpoint().bytes,
            bytes_v1,
            "{site}: rollback not bit-identical"
        );
    }
}
