//! Chaos suite: scripted fault scenarios driven end-to-end through the
//! public APIs, each asserting a **named recovery invariant**. The
//! `stgnn-faults` failpoint registry makes every scenario deterministic —
//! the same plan against the same execution injects the same faults, so
//! these tests assert exact recovery behaviour, not "it usually survives".
//!
//! Every test installs its plan through [`faults::scoped`], which holds a
//! process-global lock: scenarios serialise against each other and against
//! any other test that injects faults, and the plan is cleared on drop even
//! when the scenario panics on purpose.
//!
//! Invariants covered here:
//!
//! | Invariant                          | Scenario                          |
//! |------------------------------------|-----------------------------------|
//! | TRAIN-CRASH-RESUME                 | panic mid-epoch, resume, bit-same |
//! | ATOMIC-WRITE-NEVER-TEARS           | torn rename leaves old weights    |
//! | SERVE-PANIC-IS-CONTAINED           | forward panic → error reply, live |
//! | SWAP-FAULT-KEEPS-OLD-WEIGHTS       | failed hot-swap serves old model  |
//! | DELAY-FAULTS-ARE-SEMANTICALLY-INERT| delay-only plan changes no bits   |
//! | CORRUPT-CHECKPOINT-IS-REJECTED     | damage → typed error, no panic    |

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use stgnn_djd::data::dataset::{BikeDataset, DatasetConfig, Split};
use stgnn_djd::data::error::Error;
use stgnn_djd::data::synthetic::{CityConfig, SyntheticCity};
use stgnn_djd::faults::{scoped, FaultPlan, FaultSpec, Trigger};
use stgnn_djd::model::{StgnnConfig, StgnnDjd, Trainer};
use stgnn_djd::serve::client;
use stgnn_djd::serve::{ModelSpec, ServeConfig, Server};

fn dataset(seed: u64) -> BikeDataset {
    let city = SyntheticCity::generate(CityConfig::test_tiny(seed));
    BikeDataset::from_city(&city, DatasetConfig::small(6, 2)).unwrap()
}

fn tiny_config() -> StgnnConfig {
    let mut config = StgnnConfig::test_tiny(6, 2);
    config.epochs = 2;
    config.max_batches_per_epoch = Some(4);
    config
}

fn scratch_dir(label: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("stgnn-chaos-{}-{label}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn loss_bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn param_bits(model: &StgnnDjd) -> Vec<Vec<u32>> {
    model
        .params()
        .params()
        .iter()
        .map(|p| p.value().data().iter().map(|x| x.to_bits()).collect())
        .collect()
}

/// Named invariant: TRAIN-CRASH-RESUME. A training process killed by a
/// *panic* mid-epoch (the harshest crash we can inject in-process) leaves a
/// valid checkpoint behind, and resuming it in a fresh model reproduces the
/// uninterrupted run's losses bit for bit.
#[test]
fn panic_crash_then_resume_matches_uninterrupted_run() {
    let data = dataset(141);
    let config = tiny_config();

    // Reference: the run that never crashes.
    let mut gold = StgnnDjd::new(config.clone(), data.n_stations()).unwrap();
    let gold_report = {
        let _quiet = scoped(FaultPlan::new());
        Trainer::new(config.clone())
            .train(&mut gold, &data)
            .unwrap()
    };

    // Crash run: checkpoint every 2 batches, panic at the 6th step (epoch 1,
    // batch 2 — two steps past the last epoch-0 checkpoint).
    let path = scratch_dir("panic-resume").join("train.ckpt");
    let trainer = Trainer::new(config.clone()).with_checkpointing(&path, 2);
    {
        let _chaos =
            scoped(FaultPlan::new().with("trainer::step", FaultSpec::panic(Trigger::OnHit(6))));
        let mut doomed = StgnnDjd::new(config.clone(), data.n_stations()).unwrap();
        let crash = catch_unwind(AssertUnwindSafe(|| trainer.train(&mut doomed, &data)));
        assert!(crash.is_err(), "the injected panic did not fire");
    }
    assert!(path.exists(), "no checkpoint survived the crash");

    // Recovery: a fresh model (a new process would rebuild it the same way)
    // resumes from the checkpoint and lands exactly where gold did.
    let mut resumed = StgnnDjd::new(config, data.n_stations()).unwrap();
    let report = {
        let _quiet = scoped(FaultPlan::new());
        trainer.resume_from(&path, &mut resumed, &data).unwrap()
    };
    assert!(report.resumed);
    assert_eq!(
        loss_bits(&report.train_losses),
        loss_bits(&gold_report.train_losses)
    );
    assert_eq!(
        loss_bits(&report.val_losses),
        loss_bits(&gold_report.val_losses)
    );
    assert_eq!(param_bits(&gold), param_bits(&resumed));
}

/// Named invariant: ATOMIC-WRITE-NEVER-TEARS. A fault at any stage of a
/// weight save — here the final rename — leaves the previous file byte-
/// identical and litters no temp files; a reader can only ever observe the
/// old weights or the new ones, never a torn mix.
#[test]
fn torn_weight_save_leaves_the_old_checkpoint_intact() {
    let data = dataset(142);
    let config = tiny_config();
    let dir = scratch_dir("torn-save");
    let path = dir.join("weights.bin");

    let old = StgnnDjd::new(config.clone(), data.n_stations()).unwrap();
    let mut newer_cfg = config.clone();
    newer_cfg.seed = config.seed + 1;
    let newer = StgnnDjd::new(newer_cfg, data.n_stations()).unwrap();
    assert_ne!(old.weights_to_bytes(), newer.weights_to_bytes());

    {
        let _quiet = scoped(FaultPlan::new());
        old.save_weights(&path).unwrap();
    }

    for site in [
        "atomic_write::rename",
        "atomic_write::fsync",
        "atomic_write::write",
    ] {
        let _chaos = scoped(FaultPlan::new().with(site, FaultSpec::io(Trigger::EveryHit)));
        let err = newer.save_weights(&path).unwrap_err();
        assert!(err.to_string().contains(site), "{err}");
        // The visible file still holds the OLD weights, bit for bit.
        let mut reread = StgnnDjd::new(config.clone(), data.n_stations()).unwrap();
        reread.load_weights(&path).unwrap();
        assert_eq!(
            reread.weights_to_bytes(),
            old.weights_to_bytes(),
            "faulted {site} tore the visible file"
        );
    }
    // No temp-file litter: the failed attempts cleaned up after themselves.
    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp."))
        .collect();
    assert!(leftovers.is_empty(), "temp litter: {leftovers:?}");
}

fn serve_fixture(seed: u64) -> (Arc<BikeDataset>, Server, usize) {
    let city = SyntheticCity::generate(CityConfig::test_tiny(seed));
    let data = Arc::new(BikeDataset::from_city(&city, DatasetConfig::small(6, 2)).unwrap());
    let server = Server::start(Arc::clone(&data), ServeConfig::default()).unwrap();
    let mut config = StgnnConfig::test_tiny(6, 2);
    config.seed = 7;
    let spec = ModelSpec::new(config, data.n_stations());
    let bytes = spec.materialize().unwrap().weights_to_bytes();
    server.registry().register("stgnn", spec, bytes).unwrap();
    let t = data.slots(Split::Test)[0];
    (data, server, t)
}

/// Named invariant: SERVE-PANIC-IS-CONTAINED. A panic inside the batched
/// forward pass is converted into an error reply for the batch that hit it;
/// the worker thread survives and the very next request is served normally.
#[test]
fn forward_pass_panic_fails_one_request_and_the_server_keeps_serving() {
    let _chaos =
        scoped(FaultPlan::new().with("serve::forward", FaultSpec::panic(Trigger::OnHit(1))));
    let (_data, mut server, t) = serve_fixture(143);
    let addr = server.addr();
    let path = format!("/predict?model=stgnn&slot={t}&deadline_ms=30000");

    let hit = client::get(addr, &path).unwrap();
    assert_eq!(hit.status, 400, "{}", hit.body);
    assert!(hit.body.contains("forward pass failed"), "{}", hit.body);

    // The worker contained the panic; the retry goes through the full
    // forward path (the failed batch never populated the cache).
    let ok = client::get(addr, &path).unwrap();
    assert_eq!(ok.status, 200, "{}", ok.body);
    assert_eq!(ok.json_field("degraded").unwrap(), "false");

    let s = server.metrics_snapshot();
    // The one failed request is counted at the worker and again by the HTTP
    // reply layer; the successful retry contributes the one forward pass.
    assert_eq!(s.errors, 2, "snapshot: {s:?}");
    assert_eq!(s.requests, 2, "snapshot: {s:?}");
    assert_eq!(s.forward_passes, 1, "snapshot: {s:?}");
    assert_eq!(stgnn_djd::faults::fired("serve::forward"), 1);
    server.shutdown();
}

/// Named invariant: SWAP-FAULT-KEEPS-OLD-WEIGHTS. A fault during hot-swap
/// rejects the swap with a structured error; the registered version does
/// not advance and the old weights answer every subsequent query unchanged.
#[test]
fn failed_hot_swap_keeps_serving_the_old_weights() {
    let _chaos = scoped(FaultPlan::new().with("registry::swap", FaultSpec::io(Trigger::EveryHit)));
    let (data, mut server, t) = serve_fixture(144);
    let addr = server.addr();
    let path = format!("/predict?model=stgnn&slot={t}&deadline_ms=30000");

    let before = client::get(addr, &path).unwrap();
    assert_eq!(before.status, 200, "{}", before.body);
    let baseline = before.json_field("demand").unwrap();

    let mut other = StgnnConfig::test_tiny(6, 2);
    other.seed = 999;
    let candidate = StgnnDjd::new(other, data.n_stations())
        .unwrap()
        .weights_to_bytes();
    let swap = client::post(addr, "/models/stgnn/swap", &candidate).unwrap();
    assert_ne!(
        swap.status, 200,
        "swap should have been rejected: {}",
        swap.body
    );

    let models = client::get(addr, "/models").unwrap();
    assert!(
        models.body.contains(r#""name":"stgnn","version":1"#),
        "version advanced despite the failed swap: {}",
        models.body
    );
    let after = client::get(addr, &path).unwrap();
    assert_eq!(after.status, 200, "{}", after.body);
    assert_eq!(
        after.json_field("demand").unwrap(),
        baseline,
        "answers changed after a swap that reported failure"
    );
    server.shutdown();
}

/// Named invariant: DELAY-FAULTS-ARE-SEMANTICALLY-INERT. A delay-only plan
/// (the plan CI runs the whole suite under) slows execution down but must
/// not change a single bit of any result — training under seeded delays on
/// the hot seams reproduces the undelayed run exactly.
#[test]
fn delay_only_plan_changes_timing_but_not_one_bit_of_the_results() {
    let data = dataset(145);
    let config = tiny_config();

    let mut quiet_model = StgnnDjd::new(config.clone(), data.n_stations()).unwrap();
    let quiet = {
        let _quiet = scoped(FaultPlan::new());
        Trainer::new(config.clone())
            .train(&mut quiet_model, &data)
            .unwrap()
    };

    let mut slow_model = StgnnDjd::new(config.clone(), data.n_stations()).unwrap();
    let slow = {
        let _chaos = scoped(
            FaultPlan::new()
                .with("trainer::step", FaultSpec::delay(2, Trigger::EveryHit))
                .with(
                    "plan::replay",
                    FaultSpec {
                        action: stgnn_djd::faults::FaultAction::Delay { ms: 1 },
                        trigger: Trigger::WithProb { p: 0.25, seed: 7 },
                    },
                )
                .with("pool::alloc", FaultSpec::delay(1, Trigger::OnHit(3))),
        );
        Trainer::new(config).train(&mut slow_model, &data).unwrap()
    };

    assert_eq!(
        loss_bits(&quiet.train_losses),
        loss_bits(&slow.train_losses)
    );
    assert_eq!(loss_bits(&quiet.val_losses), loss_bits(&slow.val_losses));
    assert_eq!(quiet.best_val_loss.to_bits(), slow.best_val_loss.to_bits());
    assert_eq!(param_bits(&quiet_model), param_bits(&slow_model));
}

/// Named invariant: CORRUPT-CHECKPOINT-IS-REJECTED. Every class of on-disk
/// damage — truncation, a flipped bit, a version-skewed header, plain
/// garbage — surfaces as a typed error from `resume_from`; the model being
/// resumed into is never partially loaded and nothing panics.
#[test]
fn damaged_checkpoints_are_rejected_without_touching_the_model() {
    let _quiet = scoped(FaultPlan::new());
    let data = dataset(146);
    let mut config = tiny_config();
    config.epochs = 1;
    let dir = scratch_dir("corrupt");
    let path = dir.join("train.ckpt");

    let trainer = Trainer::new(config.clone()).with_checkpointing(&path, 1);
    let mut model = StgnnDjd::new(config.clone(), data.n_stations()).unwrap();
    trainer.train(&mut model, &data).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    let damage: [(&str, Vec<u8>, &str); 4] = [
        (
            "truncated",
            pristine[..pristine.len() - 16].to_vec(),
            "truncated",
        ),
        (
            "bit-flipped",
            {
                let mut b = pristine.clone();
                let last = b.len() - 2;
                b[last] ^= 0x01;
                b
            },
            "checksum mismatch",
        ),
        (
            "version-skewed",
            {
                let text = String::from_utf8(pristine.clone()).unwrap();
                text.replacen("stgnn-ckpt v1", "stgnn-ckpt v9", 1)
                    .into_bytes()
            },
            "version skew",
        ),
        (
            "garbage",
            b"not a checkpoint at all\n".to_vec(),
            "checkpoint",
        ),
    ];

    for (label, bytes, expect) in damage {
        std::fs::write(&path, bytes).unwrap();
        let mut victim = StgnnDjd::new(config.clone(), data.n_stations()).unwrap();
        let before = param_bits(&victim);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            trainer.resume_from(&path, &mut victim, &data)
        }));
        let result = outcome.unwrap_or_else(|_| panic!("{label} checkpoint panicked the loader"));
        let err = result.expect_err(label);
        assert!(
            err.to_string().contains(expect),
            "{label}: expected {expect:?} in {err}"
        );
        assert!(
            !matches!(err, Error::Io(_)) || label == "garbage" || label == "truncated",
            "{label} should be a typed rejection, got {err}"
        );
        assert_eq!(before, param_bits(&victim), "{label} partially loaded");
    }

    // The pristine bytes still resume fine — the file itself was never the
    // problem.
    std::fs::write(&path, pristine).unwrap();
    let mut fresh = StgnnDjd::new(config, data.n_stations()).unwrap();
    assert!(trainer.resume_from(&path, &mut fresh, &data).is_ok());
}
