//! Qualitative paper claims verified at test scale.
//!
//! These are the fast, always-on versions of what the bench binaries verify
//! at experiment scale: the *relationships* the paper reports, not the
//! absolute numbers.

use stgnn_djd::data::dataset::{BikeDataset, DatasetConfig, Split};
use stgnn_djd::data::predictor::{evaluate, DemandSupplyPredictor};
use stgnn_djd::data::synthetic::{CityConfig, SyntheticCity};
use stgnn_djd::model::attention::dependency_vs_nearest;
use stgnn_djd::model::{StgnnConfig, StgnnDjd};

fn dataset(seed: u64) -> BikeDataset {
    let city = SyntheticCity::generate(CityConfig::test_tiny(seed));
    BikeDataset::from_city(&city, DatasetConfig::small(6, 2)).expect("dataset")
}

/// §VII-F: every ablation variant trains and produces finite metrics (the
/// quantitative ordering is asserted at bench scale in fig4_ablation).
#[test]
fn ablation_variants_all_train() {
    let data = dataset(3001);
    let slots: Vec<usize> = data.slots(Split::Test).into_iter().take(10).collect();
    let configs = [
        ("full", StgnnConfig::test_tiny(6, 2)),
        ("no_fc", StgnnConfig::test_tiny(6, 2).without_flow_conv()),
        ("no_fcg", StgnnConfig::test_tiny(6, 2).without_fcg()),
        ("no_pcg", StgnnConfig::test_tiny(6, 2).without_pcg()),
    ];
    for (name, config) in configs {
        let mut model = StgnnDjd::new(config, data.n_stations()).expect("model");
        model.fit(&data).unwrap_or_else(|e| panic!("{name}: {e}"));
        let row = evaluate(&model, &data, &slots);
        assert!(row.rmse_mean.is_finite() && row.rmse_mean > 0.0, "{name}");
    }
}

/// §VII-G: aggregator swaps train end-to-end on both graphs.
#[test]
fn aggregator_swaps_all_train() {
    use stgnn_djd::model::{FcgAggregator, PcgAggregator};
    let data = dataset(3002);
    let slots: Vec<usize> = data.slots(Split::Test).into_iter().take(8).collect();
    for fcg in [FcgAggregator::Flow, FcgAggregator::Mean, FcgAggregator::Max] {
        for pcg in [
            PcgAggregator::Attention,
            PcgAggregator::Mean,
            PcgAggregator::Max,
        ] {
            let mut config = StgnnConfig::test_tiny(6, 2);
            config.fcg_aggregator = fcg;
            config.pcg_aggregator = pcg;
            let mut model = StgnnDjd::new(config, data.n_stations()).expect("model");
            model
                .fit(&data)
                .unwrap_or_else(|e| panic!("{fcg:?}/{pcg:?}: {e}"));
            let row = evaluate(&model, &data, &slots);
            assert!(row.rmse_mean.is_finite(), "{fcg:?}/{pcg:?}");
        }
    }
}

/// §VIII: the learned dependency is dynamic — it differs across slots and
/// across station pairs (Figures 11–12's first two observations).
#[test]
fn learned_dependency_is_dynamic() {
    let data = dataset(3003);
    let mut model = StgnnDjd::new(StgnnConfig::test_tiny(6, 2), data.n_stations()).expect("model");
    model.fit(&data).expect("fit");
    let slots: Vec<usize> = data.slots(Split::Test).into_iter().take(6).collect();
    let dep = dependency_vs_nearest(&model, &data, 0, 5, &slots).expect("attention");

    // Varies over time: at least one neighbour's score changes across slots.
    let time_varying = (0..5).any(|j| {
        let col: Vec<f32> = dep.to_target.iter().map(|row| row[j]).collect();
        col.iter().any(|&v| (v - col[0]).abs() > 1e-6)
    });
    assert!(time_varying, "attention constant over time");

    // Varies across pairs at a fixed time.
    let pair_varying = dep
        .to_target
        .iter()
        .any(|row| row.iter().any(|&v| (v - row[0]).abs() > 1e-6));
    assert!(pair_varying, "attention constant across pairs");
}

/// §I / §VIII: the synthetic city's ground truth itself violates locality —
/// flow between adjacent stations is *not* the strongest (bikes are not
/// ridden between next-door docks), so the locality prior is wrong by
/// construction, as the paper argues for the real systems.
#[test]
fn ground_truth_flow_violates_locality() {
    let city = SyntheticCity::generate(CityConfig::test_small(3004));
    let flows = stgnn_djd::data::flow::FlowSeries::from_trips(
        &city.trips,
        city.registry.len(),
        city.config.days,
        city.config.slots_per_day,
    )
    .expect("flows");
    // Total outflow per pair.
    let n = city.registry.len();
    let mut total = vec![0.0f32; n * n];
    for t in 0..flows.num_slots() {
        for (acc, &v) in total.iter_mut().zip(flows.outflow(t).data()) {
            *acc += v;
        }
    }
    // For a majority of stations, the nearest neighbour is NOT the largest
    // flow partner.
    let mut violations = 0;
    for i in 0..n {
        let nearest = city.registry.nearest(i, 1)[0];
        let best_partner = (0..n).max_by(|&a, &b| {
            total[i * n + a]
                .partial_cmp(&total[i * n + b])
                .expect("finite")
        });
        if best_partner != Some(nearest) {
            violations += 1;
        }
    }
    assert!(
        violations * 2 > n,
        "locality unexpectedly holds: {violations}/{n}"
    );
}
