//! End-to-end tests for the `stgnn-serve` subsystem over real TCP: boot the
//! server on an ephemeral port, register a model, and drive it with the
//! bundled blocking client the way a fleet of provider dashboards would.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use stgnn_djd::data::dataset::{BikeDataset, DatasetConfig, Split};
use stgnn_djd::data::synthetic::{CityConfig, SyntheticCity};
use stgnn_djd::model::{StgnnConfig, StgnnDjd};
use stgnn_djd::serve::client;
use stgnn_djd::serve::{ModelSpec, ServeConfig, Server};

fn dataset() -> Arc<BikeDataset> {
    let city = SyntheticCity::generate(CityConfig::test_tiny(99));
    Arc::new(BikeDataset::from_city(&city, DatasetConfig::small(6, 2)).unwrap())
}

fn register_model(server: &Server, data: &BikeDataset, seed: u64) -> Vec<u8> {
    let mut config = StgnnConfig::test_tiny(6, 2);
    config.seed = seed;
    let spec = ModelSpec::new(config, data.n_stations());
    let bytes = spec.materialize().unwrap().weights_to_bytes();
    server
        .registry()
        .register("stgnn", spec, bytes.clone())
        .unwrap();
    bytes
}

/// The acceptance path end to end: concurrent same-slot queries coalesce
/// into exactly one forward pass, a hot-swapped checkpoint changes the
/// responses, and the metrics surface makes both observable.
#[test]
fn concurrent_queries_batch_into_one_forward_pass_and_swap_changes_them() {
    let data = dataset();
    let t = data.slots(Split::Test)[0];
    let mut server = Server::start(
        Arc::clone(&data),
        ServeConfig {
            // A long linger so 16 client threads racing through the TCP
            // stack reliably land inside one coalescing window (the
            // exactly-once machinery makes the assertion hold regardless —
            // the linger just makes real batches, not only cache hits).
            batch_linger: Duration::from_millis(50),
            default_deadline: Duration::from_secs(30),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    register_model(&server, &data, 7);
    let addr = server.addr();

    // Liveness + registry listing.
    let health = client::get(addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    let models = client::get(addr, "/models").unwrap();
    assert!(
        models.body.contains(r#""name":"stgnn","version":1"#),
        "{}",
        models.body
    );

    // 16 concurrent queries for the same target slot.
    let path = format!("/predict?model=stgnn&slot={t}&deadline_ms=30000");
    let handles: Vec<_> = (0..16)
        .map(|_| {
            let path = path.clone();
            thread::spawn(move || client::get(addr, &path).unwrap())
        })
        .collect();
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let first_demand = responses[0].json_field("demand").unwrap();
    for r in &responses {
        assert_eq!(r.status, 200, "{}", r.body);
        assert_eq!(r.json_field("degraded").unwrap(), "false", "{}", r.body);
        assert_eq!(r.json_field("source").unwrap(), r#""model""#);
        assert_eq!(
            r.json_field("demand").unwrap(),
            first_demand,
            "all 16 must see one result"
        );
    }

    // Exactly one forward pass served all 16; the rest were coalesced into
    // the batch or answered from the slot cache.
    let s = server.metrics_snapshot();
    assert_eq!(s.forward_passes, 1, "snapshot: {s:?}");
    assert_eq!(s.requests, 16);
    assert_eq!(s.batched + s.cache_hits, 16, "snapshot: {s:?}");
    assert!(s.max_batch_observed() >= 1);

    // The line-protocol dump carries the same counters.
    let metrics = client::get(addr, "/metrics").unwrap();
    assert!(
        metrics.body.contains("serve_forward_passes_total 1"),
        "{}",
        metrics.body
    );

    // Hot-swap a differently-initialised checkpoint over HTTP; the same
    // slot must now be recomputed and answer differently.
    let mut other_config = StgnnConfig::test_tiny(6, 2);
    other_config.seed = 12345;
    let other = StgnnDjd::new(other_config, data.n_stations())
        .unwrap()
        .weights_to_bytes();
    let swap = client::post(addr, "/models/stgnn/swap", &other).unwrap();
    assert_eq!(swap.status, 200, "{}", swap.body);
    assert_eq!(swap.json_field("version").unwrap(), "2");

    let after = client::get(addr, &path).unwrap();
    assert_eq!(after.status, 200, "{}", after.body);
    assert_eq!(after.json_field("degraded").unwrap(), "false");
    assert_ne!(
        after.json_field("demand").unwrap(),
        first_demand,
        "hot-swapped weights must change the answer"
    );
    assert_eq!(server.metrics_snapshot().forward_passes, 2);

    // Error surfaces stay structured.
    let missing = client::get(addr, "/predict?model=stgnn").unwrap();
    assert_eq!(missing.status, 400);
    let unknown = client::get(addr, &format!("/predict?model=nope&slot={t}")).unwrap();
    assert_eq!(unknown.status, 404, "{}", unknown.body);

    server.shutdown();
}

/// A slow model path must not stall the caller: the deadline trips and the
/// response comes from the Historical-Average table, tagged degraded.
#[test]
fn slow_model_degrades_to_ha_within_the_deadline() {
    let data = dataset();
    let t = data.slots(Split::Test)[0];
    let mut server = Server::start(
        Arc::clone(&data),
        ServeConfig {
            // Every forward pass takes ≥ 400 ms — far past the deadline.
            forward_delay: Some(Duration::from_millis(400)),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    register_model(&server, &data, 7);

    let started = Instant::now();
    let r = client::get(
        server.addr(),
        &format!("/predict?model=stgnn&slot={t}&deadline_ms=50"),
    )
    .unwrap();
    let elapsed = started.elapsed();

    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(r.json_field("degraded").unwrap(), "true", "{}", r.body);
    assert_eq!(r.json_field("source").unwrap(), r#""fallback-ha""#);
    assert!(
        elapsed < Duration::from_millis(350),
        "degraded answer took {elapsed:?}, should beat the 400 ms forward delay"
    );
    // The HA table still produced a full per-station forecast.
    let demand = r.json_field("demand").unwrap();
    assert!(demand.starts_with('['), "{demand}");
    assert_eq!(server.metrics_snapshot().fallbacks, 1);

    server.shutdown();
}

/// Regression: a client that connects and then stalls mid-request used to
/// pin its handler thread forever (no socket read timeout). The server must
/// cut the connection after `read_timeout` and keep serving others.
#[test]
fn stalled_client_is_dropped_and_does_not_wedge_the_server() {
    let data = dataset();
    let t = data.slots(Split::Test)[0];
    let mut server = Server::start(
        Arc::clone(&data),
        ServeConfig {
            read_timeout: Duration::from_millis(100),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    register_model(&server, &data, 7);
    let addr = server.addr();

    // A client that sends half a request line and then goes silent.
    let mut stalled = TcpStream::connect(addr).unwrap();
    stalled.write_all(b"GET /pred").unwrap();
    stalled.flush().unwrap();

    // While it stalls, normal clients are served as usual.
    let path = format!("/predict?model=stgnn&slot={t}&deadline_ms=30000");
    let healthy = client::get(addr, &path).unwrap();
    assert_eq!(healthy.status, 200, "{}", healthy.body);

    // The server hangs up on the stalled connection once the read timeout
    // fires: the client observes EOF, well before any multi-second hang.
    let started = Instant::now();
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = [0u8; 64];
    let n = stalled.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "expected EOF, got {n} bytes");
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "connection lingered {:?} despite the 100 ms read timeout",
        started.elapsed()
    );

    server.shutdown();
}

/// Regression for the write-side mirror of the stalled-client bug: a
/// half-open client that sends a full request and then never drains the
/// response must not pin its handler thread past `write_timeout`. The
/// response write either lands in the kernel buffer or times out; either
/// way the server keeps serving everyone else for the whole stall window.
#[test]
fn half_open_client_cannot_pin_the_writer() {
    let data = dataset();
    let t = data.slots(Split::Test)[0];
    let write_timeout = Duration::from_millis(100);
    let mut server = Server::start(
        Arc::clone(&data),
        ServeConfig {
            read_timeout: Duration::from_millis(100),
            write_timeout,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    register_model(&server, &data, 7);
    let addr = server.addr();
    let path = format!("/predict?model=stgnn&slot={t}&deadline_ms=30000");

    // Half-open clients: each sends a complete request, then refuses to
    // read a single response byte while keeping the socket open.
    let half_open: Vec<TcpStream> = (0..4)
        .map(|_| {
            let mut s = TcpStream::connect(addr).unwrap();
            write!(
                s,
                "GET {path} HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
            )
            .unwrap();
            s.flush().unwrap();
            s
        })
        .collect();

    // Throughout several write-timeout windows, well-behaved clients keep
    // getting served.
    let deadline = Instant::now() + 4 * write_timeout;
    let mut served = 0usize;
    while Instant::now() < deadline {
        let r = client::get(addr, &path).unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
        served += 1;
        thread::sleep(Duration::from_millis(20));
    }
    assert!(
        served >= 3,
        "only {served} requests served during the stall"
    );
    // The half-open connections were all answered or cut — none of them
    // wedged a handler (the server just served {served} requests on a
    // default-size worker pool while 4 connections refused to drain).
    drop(half_open);

    server.shutdown();
}

/// Per-station projection and slot-range validation over the wire.
#[test]
fn station_queries_and_range_checks() {
    let data = dataset();
    let t = data.slots(Split::Test)[0];
    let mut server = Server::start(Arc::clone(&data), ServeConfig::default()).unwrap();
    register_model(&server, &data, 7);
    let addr = server.addr();

    let r = client::get(addr, &format!("/predict?model=stgnn&slot={t}&station=0")).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(r.json_field("station").unwrap(), "0");
    let demand = r.json_field("demand").unwrap();
    assert!(
        !demand.starts_with('['),
        "station query returns a scalar, got {demand}"
    );

    let too_early = client::get(addr, "/predict?model=stgnn&slot=0").unwrap();
    assert_eq!(too_early.status, 400, "{}", too_early.body);
    let bad_station =
        client::get(addr, &format!("/predict?model=stgnn&slot={t}&station=9999")).unwrap();
    assert_eq!(bad_station.status, 400, "{}", bad_station.body);

    server.shutdown();
}
