//! Cross-crate integration: raw trips → cleansing → flows → dataset →
//! training → prediction, end to end.

use stgnn_djd::data::dataset::{BikeDataset, DatasetConfig, Split};
use stgnn_djd::data::predictor::{evaluate, DemandSupplyPredictor};
use stgnn_djd::data::synthetic::{CityConfig, SyntheticCity};
use stgnn_djd::data::trip::cleanse;
use stgnn_djd::data::MetricsAccumulator;
use stgnn_djd::model::{StgnnConfig, StgnnDjd};

fn tiny_city(seed: u64) -> SyntheticCity {
    SyntheticCity::generate(CityConfig::test_tiny(seed))
}

#[test]
fn dirty_export_pipeline_round_trips() {
    let city = tiny_city(1001);
    // Simulate an operator export with 15% corrupted records.
    let raw = city.to_raw(0.15, 3);
    let (clean, report) = cleanse(&raw, city.registry.len());
    assert!(report.dropped() > 0);
    assert_eq!(report.total(), city.trips.len());

    // The surviving records still build a working dataset.
    let flows = stgnn_djd::data::flow::FlowSeries::from_trips(
        &clean,
        city.registry.len(),
        city.config.days,
        city.config.slots_per_day,
    )
    .expect("flows");
    let data = BikeDataset::new(flows, city.registry.clone(), DatasetConfig::small(6, 2))
        .expect("dataset");
    assert!(!data.slots(Split::Test).is_empty());
}

#[test]
fn training_is_deterministic_under_a_seed() {
    let city = tiny_city(1002);
    let data = BikeDataset::from_city(&city, DatasetConfig::small(6, 2)).expect("dataset");
    let t = data.slots(Split::Test)[0];

    let run = || {
        let mut model =
            StgnnDjd::new(StgnnConfig::test_tiny(6, 2), data.n_stations()).expect("model");
        model.fit(&data).expect("fit");
        model.predict(&data, t)
    };
    let p1 = run();
    let p2 = run();
    assert_eq!(p1, p2, "same seed must give identical trained predictions");
}

#[test]
fn stgnn_beats_the_zero_predictor_end_to_end() {
    let city = tiny_city(1003);
    let data = BikeDataset::from_city(&city, DatasetConfig::small(6, 2)).expect("dataset");
    let mut model = StgnnDjd::new(StgnnConfig::test_tiny(6, 2), data.n_stations()).expect("model");
    model.fit(&data).expect("fit");
    let slots = data.slots(Split::Test);
    let row = evaluate(&model, &data, &slots);

    let mut zero = MetricsAccumulator::new();
    for &t in &slots {
        let (d, s) = data.raw_targets(t);
        zero.add_slot(&vec![0.0; d.len()], &vec![0.0; s.len()], d, s);
    }
    let zero = zero.finalize();
    assert!(row.rmse_mean < zero.rmse_mean);
    assert!(row.mae_mean < zero.mae_mean);
}

#[test]
fn rush_hour_evaluation_uses_a_subset_of_test_slots() {
    let city = SyntheticCity::generate(CityConfig::test_small(1004));
    let data = BikeDataset::from_city(&city, DatasetConfig::small(12, 2)).expect("dataset");
    let all = data.slots(Split::Test);
    let morning = data.rush_slots(Split::Test, true);
    let evening = data.rush_slots(Split::Test, false);
    assert!(!morning.is_empty() && !evening.is_empty());
    assert!(morning.len() + evening.len() < all.len());
    assert!(morning.iter().all(|t| all.contains(t)));
    assert!(morning.iter().all(|t| !evening.contains(t)));
}
