//! Integration tests for the two extension features: weight persistence and
//! the §IX multi-step prediction extension.

use stgnn_djd::data::dataset::{BikeDataset, DatasetConfig, Split};
use stgnn_djd::data::predictor::DemandSupplyPredictor;
use stgnn_djd::data::synthetic::{CityConfig, SyntheticCity};
use stgnn_djd::model::{StgnnConfig, StgnnDjd};

fn dataset(seed: u64) -> BikeDataset {
    let city = SyntheticCity::generate(CityConfig::test_tiny(seed));
    BikeDataset::from_city(&city, DatasetConfig::small(6, 2)).expect("dataset")
}

#[test]
fn trained_weights_round_trip_through_disk() {
    let data = dataset(4001);
    let config = StgnnConfig::test_tiny(6, 2);
    let mut model = StgnnDjd::new(config.clone(), data.n_stations()).expect("model");
    model.fit(&data).expect("fit");
    let t = data.slots(Split::Test)[0];
    let before = model.predict(&data, t);

    let path = std::env::temp_dir().join("stgnn_djd_roundtrip_test.params");
    model.save_weights(&path).expect("save");

    // A freshly-built (differently-seeded init doesn't matter — weights are
    // overwritten) model must reproduce the trained predictions exactly.
    let mut restored = StgnnDjd::new(config, data.n_stations()).expect("model");
    assert!(!restored.is_trained());
    restored.load_weights(&path).expect("load");
    assert!(restored.is_trained());
    let after = restored.predict(&data, t);
    assert_eq!(before, after, "loaded model diverged from saved model");
    std::fs::remove_file(&path).ok();
}

#[test]
fn load_rejects_a_different_architecture() {
    let data = dataset(4002);
    let model = StgnnDjd::new(StgnnConfig::test_tiny(6, 2), data.n_stations()).expect("model");
    let path = std::env::temp_dir().join("stgnn_djd_mismatch_test.params");
    model.save_weights(&path).expect("save");

    // Different head count ⇒ different parameter names ⇒ refuse to load.
    let mut other_cfg = StgnnConfig::test_tiny(6, 2);
    other_cfg.heads = 3;
    let mut other = StgnnDjd::new(other_cfg, data.n_stations()).expect("model");
    assert!(other.load_weights(&path).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn multi_step_forecast_covers_future_slots() {
    let data = dataset(4003);
    let mut config = StgnnConfig::test_tiny(6, 2);
    config.horizon = 3;
    config.epochs = 3;
    let mut model = StgnnDjd::new(config, data.n_stations()).expect("model");
    model.fit(&data).expect("fit");

    let t = data.slots(Split::Test)[0];
    let forecasts = model.predict_horizon(&data, t);
    assert_eq!(forecasts.len(), 3);
    for (h, f) in forecasts.iter().enumerate() {
        assert_eq!(f.demand.len(), data.n_stations(), "step {h}");
        assert!(f
            .demand
            .iter()
            .chain(&f.supply)
            .all(|&v| v >= 0.0 && v.is_finite()));
    }
    // The multi-step targets builder rejects windows that overrun the data.
    let last = data.flows().num_slots() - 1;
    assert!(data.targets_horizon(last, 3).is_err());
    assert!(data.targets_horizon(last, 1).is_ok());
}

#[test]
fn predict_is_the_first_horizon_step() {
    let data = dataset(4004);
    let mut config = StgnnConfig::test_tiny(6, 2);
    config.horizon = 3;
    let model = StgnnDjd::new(config, data.n_stations()).expect("model");
    let t = data.slots(Split::Test)[0];
    let single = model.predict(&data, t);
    let multi = model.predict_horizon(&data, t);
    assert_eq!(multi.len(), 3);
    assert_eq!(single, multi[0], "predict must agree with horizon step 0");
    // Steps are genuinely distinct forecasts, not step 0 repeated.
    assert!(multi.iter().skip(1).any(|p| *p != multi[0]));
}

#[test]
fn predict_horizon_is_deterministic_in_eval_mode() {
    let data = dataset(4005);
    let model = StgnnDjd::new(StgnnConfig::test_tiny(6, 2), data.n_stations()).expect("model");
    let t = data.slots(Split::Test)[0];
    assert_eq!(
        model.predict_horizon(&data, t),
        model.predict_horizon(&data, t)
    );
}

#[test]
fn check_compatible_accepts_matching_windows() {
    let data = dataset(4006);
    let model = StgnnDjd::new(StgnnConfig::test_tiny(6, 2), data.n_stations()).expect("model");
    assert!(model.check_compatible(&data).is_ok());
}

#[test]
fn check_compatible_rejects_station_count_mismatch() {
    let data = dataset(4007);
    let model = StgnnDjd::new(StgnnConfig::test_tiny(6, 2), data.n_stations() + 1).expect("model");
    let err = model.check_compatible(&data).unwrap_err().to_string();
    assert!(err.contains("stations"), "unexpected error: {err}");
}

#[test]
fn check_compatible_rejects_window_mismatch() {
    let data = dataset(4008);
    // Dataset built with (k=6, d=2); a (k=5, d=2) model must be refused.
    let model = StgnnDjd::new(StgnnConfig::test_tiny(5, 2), data.n_stations()).expect("model");
    let err = model.check_compatible(&data).unwrap_err().to_string();
    assert!(err.contains("window mismatch"), "unexpected error: {err}");
}
